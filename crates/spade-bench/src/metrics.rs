//! Service observability: a std-only metrics registry with counters,
//! gauges and fixed-bucket histograms, plus deterministic JSON and
//! Prometheus text renderings.
//!
//! The experiment daemon (`spade_bench::service`) is an always-on
//! process serving planning traffic; an operator needs queue depth,
//! cache hit rate and latency distributions without attaching a
//! debugger. The registry here is the single source of those numbers:
//! instruments are registered once at daemon startup (names, help
//! strings and label sets are fixed for the process lifetime), updated
//! lock-free from the admission path and the workers, and snapshotted
//! on demand into a [`MetricsSnapshot`] — an owned, comparable value
//! that renders as JSON (the `metrics` protocol request) or as the
//! Prometheus text exposition format (`spade-cli client metrics
//! --prom`), no HTTP endpoint required.
//!
//! # Pure observation
//!
//! Instruments are plain atomics updated with relaxed ordering: reading
//! or writing them never blocks a worker and never feeds back into a
//! simulation. Enabling or scraping metrics leaves every `RunReport`,
//! telemetry series and trace byte identical to an unobserved run —
//! the same guarantee the simulator's telemetry layer makes, pinned by
//! the service robustness suite.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use spade_sim::JsonValue;

use crate::cache::CacheStats;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the count — for mirroring an external monotonic source
    /// (e.g. [`CacheStats`]) into the registry at snapshot time.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depth, in-flight workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets follow the Prometheus `le` convention: an observation `v`
/// lands in the first bucket whose upper bound is `>= v`; anything
/// above the last bound lands in the implicit overflow (`+Inf`)
/// bucket. Bounds are fixed at registration, so concurrent observers
/// only touch atomics.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    /// One cell per bound plus the overflow cell.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending — bucket
    /// layouts are compile-time constants, so this is a programming
    /// error, not an input error.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.into(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (non-cumulative), overflow cell last.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A fixed set of named instruments, snapshot-able in registration
/// order. Registration happens once (requiring `&mut self`); updates
/// and snapshots are lock-free through the shared `Arc` handles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<Entry>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a counter and returns its update handle.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: owned_labels(labels),
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers a gauge and returns its update handle.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: owned_labels(labels),
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers a fixed-bucket histogram and returns its update handle.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(bounds));
        self.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: owned_labels(labels),
            instrument: Instrument::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// A point-in-time snapshot of every instrument, in registration
    /// order. The order — and therefore the rendered output — is a
    /// deterministic function of the registration sequence, independent
    /// of how many workers are updating concurrently.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            samples: self
                .entries
                .iter()
                .map(|e| MetricSample {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: match &e.instrument {
                        Instrument::Counter(c) => SampleValue::Counter(c.get()),
                        Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                        Instrument::Histogram(h) => SampleValue::Histogram {
                            bounds: h.bounds().to_vec(),
                            counts: h.counts(),
                            sum: h.sum(),
                        },
                    },
                })
                .collect(),
        }
    }
}

/// The captured value of one instrument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// A counter's count.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram's buckets (non-cumulative, overflow cell last) and
    /// value sum.
    Histogram {
        /// Bucket upper bounds (`le`).
        bounds: Vec<u64>,
        /// Per-bucket counts; `counts.len() == bounds.len() + 1`, the
        /// last cell is the overflow (`+Inf`) bucket.
        counts: Vec<u64>,
        /// Sum of all observed values.
        sum: u64,
    },
}

/// One instrument in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Metric name (Prometheus-style, e.g. `spade_requests_total`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs distinguishing this series from same-named ones.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: SampleValue,
}

impl MetricSample {
    /// Total observations of a histogram sample (`None` for other
    /// kinds).
    pub fn histogram_count(&self) -> Option<u64> {
        match &self.value {
            SampleValue::Histogram { counts, .. } => Some(counts.iter().sum()),
            _ => None,
        }
    }
}

/// An owned, comparable capture of a whole registry — the payload of
/// the `metrics` protocol request and of the drain summary's lifetime
/// stats.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Samples in registration order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Finds a sample by name and exact label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// The value of a counter sample found by [`MetricsSnapshot::find`].
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The snapshot as a JSON document: `{"metrics":[...]}` with one
    /// object per sample, in registration order.
    pub fn to_json(&self) -> JsonValue {
        let samples: Vec<JsonValue> = self
            .samples
            .iter()
            .map(|s| {
                let labels = JsonValue::Object(
                    s.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str())))
                        .collect(),
                );
                let mut fields = vec![
                    ("name", JsonValue::from(s.name.as_str())),
                    ("help", s.help.as_str().into()),
                    ("labels", labels),
                ];
                match &s.value {
                    SampleValue::Counter(v) => {
                        fields.push(("type", "counter".into()));
                        fields.push(("value", (*v).into()));
                    }
                    SampleValue::Gauge(v) => {
                        fields.push(("type", "gauge".into()));
                        fields.push(("value", (*v).into()));
                    }
                    SampleValue::Histogram {
                        bounds,
                        counts,
                        sum,
                    } => {
                        fields.push(("type", "histogram".into()));
                        fields.push((
                            "le",
                            JsonValue::Array(bounds.iter().map(|&b| b.into()).collect()),
                        ));
                        fields.push((
                            "counts",
                            JsonValue::Array(counts.iter().map(|&c| c.into()).collect()),
                        ));
                        fields.push(("sum", (*sum).into()));
                        fields.push(("count", counts.iter().sum::<u64>().into()));
                    }
                }
                JsonValue::object(fields)
            })
            .collect();
        JsonValue::object([("metrics", JsonValue::Array(samples))])
    }

    /// Parses a document produced by [`MetricsSnapshot::to_json`] — the
    /// client side of the `metrics` protocol request.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed sample.
    pub fn from_json(doc: &JsonValue) -> Result<MetricsSnapshot, String> {
        let list = doc
            .get("metrics")
            .and_then(JsonValue::as_array)
            .ok_or("snapshot has no \"metrics\" array")?;
        let mut samples = Vec::with_capacity(list.len());
        for item in list {
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("sample has no name")?
                .to_string();
            let help = item
                .get("help")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string();
            let labels = match item.get("labels") {
                Some(JsonValue::Object(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        v.as_str()
                            .map(|v| (k.clone(), v.to_string()))
                            .ok_or_else(|| format!("{name}: label {k} is not a string"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => Vec::new(),
            };
            let kind = item
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{name}: sample has no type"))?;
            let value = match kind {
                "counter" => SampleValue::Counter(
                    item.get("value")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("{name}: counter has no value"))?,
                ),
                "gauge" => SampleValue::Gauge(
                    item.get("value")
                        .and_then(JsonValue::as_i64)
                        .ok_or_else(|| format!("{name}: gauge has no value"))?,
                ),
                "histogram" => {
                    let nums = |key: &str| -> Result<Vec<u64>, String> {
                        item.get(key)
                            .and_then(JsonValue::as_array)
                            .ok_or_else(|| format!("{name}: histogram has no {key}"))?
                            .iter()
                            .map(|v| {
                                v.as_u64()
                                    .ok_or_else(|| format!("{name}: bad number in {key}"))
                            })
                            .collect()
                    };
                    let bounds = nums("le")?;
                    let counts = nums("counts")?;
                    if counts.len() != bounds.len() + 1 {
                        return Err(format!("{name}: counts/le length mismatch"));
                    }
                    SampleValue::Histogram {
                        bounds,
                        counts,
                        sum: item
                            .get("sum")
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| format!("{name}: histogram has no sum"))?,
                    }
                }
                other => return Err(format!("{name}: unknown sample type {other:?}")),
            };
            samples.push(MetricSample {
                name,
                help,
                labels,
                value,
            });
        }
        Ok(MetricsSnapshot { samples })
    }

    /// The snapshot in the Prometheus text exposition format (version
    /// 0.0.4): `# HELP` / `# TYPE` once per metric name, one line per
    /// series, histograms expanded into cumulative `_bucket{le=...}`
    /// lines plus `_sum` and `_count`. Deterministic byte-for-byte for
    /// a given snapshot — golden-file friendly.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.samples {
            let kind = match s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram { .. } => "histogram",
            };
            if !seen.contains(&s.name.as_str()) {
                seen.push(&s.name);
                out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
                out.push_str(&format!("# TYPE {} {kind}\n", s.name));
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", s.name, label_block(&s.labels, None)));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", s.name, label_block(&s.labels, None)));
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                } => {
                    let mut cumulative = 0u64;
                    for (b, c) in bounds.iter().zip(counts) {
                        cumulative += c;
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            s.name,
                            label_block(&s.labels, Some(&b.to_string()))
                        ));
                    }
                    cumulative += counts.last().copied().unwrap_or(0);
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        s.name,
                        label_block(&s.labels, Some("+Inf"))
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {sum}\n",
                        s.name,
                        label_block(&s.labels, None)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {cumulative}\n",
                        s.name,
                        label_block(&s.labels, None)
                    ));
                }
            }
        }
        out
    }
}

/// Renders `{k="v",...}` (empty string when there is nothing to show),
/// appending the `le` pseudo-label for histogram bucket lines.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

// ---------------------------------------------------------------------------
// The daemon's instrument set
// ---------------------------------------------------------------------------

/// Request kinds the daemon counts, in protocol order.
pub const REQUEST_KINDS: [&str; 10] = [
    "ping", "status", "metrics", "query", "run", "search", "trace", "batch", "advise", "shutdown",
];

/// The tiers an `advise` answer can come from (see
/// `spade_core::advisor::AdviseSource`).
pub const ADVISE_SOURCES: [&str; 3] = ["model", "heuristic", "exhaustive"];

/// Advise-latency bucket bounds in microseconds: the whole point of the
/// model tier is sub-millisecond selection, so the buckets resolve 50 µs
/// to 25 ms (anything beyond is a regression worth seeing).
pub const ADVISE_LATENCY_BUCKETS_US: [u64; 9] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000];

/// Per-job outcomes inside a `batch` request: served fresh, served from
/// the cache, rejected with back-pressure, or failed (bad spec,
/// deadline, simulation error).
pub const BATCH_JOB_OUTCOMES: [&str; 4] = ["ok", "cached", "rejected", "error"];

/// Wall-time bucket bounds in microseconds: 100 µs to one minute,
/// roughly ×5 per step — wide enough for a cache hit and a full-scale
/// sweep on one axis.
pub const WALL_TIME_BUCKETS_US: [u64; 9] = [
    100, 1_000, 5_000, 25_000, 100_000, 500_000, 2_500_000, 10_000_000, 60_000_000,
];

/// Simulated-cycle bucket bounds: decades from 10³ to 10⁹ cycles.
pub const SIM_CYCLE_BUCKETS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// The daemon's full instrument set, registered once at startup:
/// requests by kind and outcome, back-pressure and framing counters,
/// queue/worker gauges, cache behavior mirrors, deadline kills, and
/// the latency histograms (queue wait, execution wall time, simulated
/// cycles).
#[derive(Debug)]
pub struct ServiceMetrics {
    registry: MetricsRegistry,
    /// `(ok, error)` counter per [`REQUEST_KINDS`] entry.
    requests: Vec<(Arc<Counter>, Arc<Counter>)>,
    /// One counter per [`BATCH_JOB_OUTCOMES`] entry — a batch counts
    /// once in `spade_requests_total{cmd="batch"}` and once per job
    /// here.
    batch_jobs: Vec<Arc<Counter>>,
    /// Requests rejected with `overloaded` back-pressure.
    pub rejected_overload: Arc<Counter>,
    /// Frames that failed to parse as a request.
    pub bad_frames: Arc<Counter>,
    /// Requests that died at their cycle deadline.
    pub deadline_kills: Arc<Counter>,
    /// Connections accepted over the lifetime.
    pub connections: Arc<Counter>,
    /// Admission-queue depth (mirrored at snapshot time).
    pub queue_depth: Arc<Gauge>,
    /// Jobs executing right now (mirrored at snapshot time).
    pub in_flight: Arc<Gauge>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_stores: Arc<Counter>,
    cache_quarantined: Arc<Counter>,
    /// Time spent waiting in the admission queue, microseconds.
    pub queue_wait_us: Arc<Histogram>,
    /// Worker execution wall time, microseconds.
    pub exec_us: Arc<Histogram>,
    /// Simulated cycles per completed simulation.
    pub sim_cycles: Arc<Histogram>,
    /// One counter per [`ADVISE_SOURCES`] entry: which tier answered.
    advise_total: Vec<Arc<Counter>>,
    /// Advise selection latency, microseconds (no simulation included).
    pub advise_latency_us: Arc<Histogram>,
}

impl ServiceMetrics {
    /// Registers the daemon's instrument set.
    pub fn new() -> Self {
        let mut r = MetricsRegistry::new();
        let requests = REQUEST_KINDS
            .iter()
            .map(|kind| {
                (
                    r.counter(
                        "spade_requests_total",
                        "Requests handled, by command and outcome.",
                        &[("cmd", kind), ("outcome", "ok")],
                    ),
                    r.counter(
                        "spade_requests_total",
                        "Requests handled, by command and outcome.",
                        &[("cmd", kind), ("outcome", "error")],
                    ),
                )
            })
            .collect();
        let batch_jobs = BATCH_JOB_OUTCOMES
            .iter()
            .map(|outcome| {
                r.counter(
                    "spade_batch_jobs_total",
                    "Jobs carried by batch requests, by per-job outcome.",
                    &[("outcome", outcome)],
                )
            })
            .collect();
        let rejected_overload = r.counter(
            "spade_rejected_overload_total",
            "Requests rejected with back-pressure because the queue or connection limit was full.",
            &[],
        );
        let bad_frames = r.counter(
            "spade_bad_frames_total",
            "Frames that could not be parsed as a request.",
            &[],
        );
        let deadline_kills = r.counter(
            "spade_deadline_kills_total",
            "Requests that exceeded their cycle deadline.",
            &[],
        );
        let connections = r.counter(
            "spade_connections_total",
            "Connections accepted over the daemon lifetime.",
            &[],
        );
        let queue_depth = r.gauge(
            "spade_queue_depth",
            "Requests waiting in the admission queue.",
            &[],
        );
        let in_flight = r.gauge(
            "spade_in_flight_workers",
            "Jobs executing on workers right now.",
            &[],
        );
        let cache_hits = r.counter(
            "spade_cache_hits_total",
            "Result-cache entries served from disk.",
            &[],
        );
        let cache_misses = r.counter(
            "spade_cache_misses_total",
            "Result-cache lookups that found nothing trustworthy.",
            &[],
        );
        let cache_stores = r.counter(
            "spade_cache_stores_total",
            "Result-cache entries committed.",
            &[],
        );
        let cache_quarantined = r.counter(
            "spade_cache_quarantined_total",
            "Result-cache entries rejected on read and moved aside.",
            &[],
        );
        let queue_wait_us = r.histogram(
            "spade_queue_wait_microseconds",
            "Time requests spent waiting in the admission queue.",
            &[],
            &WALL_TIME_BUCKETS_US,
        );
        let exec_us = r.histogram(
            "spade_exec_microseconds",
            "Worker execution wall time per request.",
            &[],
            &WALL_TIME_BUCKETS_US,
        );
        let sim_cycles = r.histogram(
            "spade_sim_cycles",
            "Simulated cycles per completed simulation.",
            &[],
            &SIM_CYCLE_BUCKETS,
        );
        let advise_total = ADVISE_SOURCES
            .iter()
            .map(|source| {
                r.counter(
                    "spade_advise_total",
                    "Advise answers, by the tier that produced the plan.",
                    &[("source", source)],
                )
            })
            .collect();
        let advise_latency_us = r.histogram(
            "spade_advise_latency_microseconds",
            "Plan-selection latency of advise answers (features + ranking, no simulation).",
            &[],
            &ADVISE_LATENCY_BUCKETS_US,
        );
        ServiceMetrics {
            registry: r,
            requests,
            batch_jobs,
            rejected_overload,
            bad_frames,
            deadline_kills,
            connections,
            queue_depth,
            in_flight,
            cache_hits,
            cache_misses,
            cache_stores,
            cache_quarantined,
            queue_wait_us,
            exec_us,
            sim_cycles,
            advise_total,
            advise_latency_us,
        }
    }

    /// Counts one finished request of `cmd` with the given outcome.
    /// Unknown commands never reach this point (they are rejected as
    /// bad frames before dispatch), so they are ignored here.
    pub fn count_request(&self, cmd: &str, ok: bool) {
        if let Some(i) = REQUEST_KINDS.iter().position(|k| *k == cmd) {
            let (ok_c, err_c) = &self.requests[i];
            if ok {
                ok_c.inc()
            } else {
                err_c.inc()
            }
        }
    }

    /// Counts one job carried by a `batch` request, by its per-job
    /// outcome (`ok`/`cached`/`rejected`/`error`). Unknown outcomes are
    /// ignored; the caller only emits members of [`BATCH_JOB_OUTCOMES`].
    pub fn count_batch_job(&self, outcome: &str) {
        if let Some(i) = BATCH_JOB_OUTCOMES.iter().position(|o| *o == outcome) {
            self.batch_jobs[i].inc();
        }
    }

    /// Counts one advise answer from `source` (a member of
    /// [`ADVISE_SOURCES`]; unknown sources are ignored) and observes its
    /// selection latency.
    pub fn count_advise(&self, source: &str, latency_us: u64) {
        if let Some(i) = ADVISE_SOURCES.iter().position(|s| *s == source) {
            self.advise_total[i].inc();
        }
        self.advise_latency_us.observe(latency_us);
    }

    /// Mirrors the result cache's own counters into the registry (the
    /// cache is the source of truth; the registry is the exposition).
    pub fn observe_cache(&self, stats: &CacheStats) {
        self.cache_hits.store(stats.hits);
        self.cache_misses.store(stats.misses);
        self.cache_stores.store(stats.stores);
        self.cache_quarantined.store(stats.quarantined);
    }

    /// A snapshot of every instrument, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_boundaries_use_le_semantics() {
        let h = Histogram::new(&[10, 100]);
        h.observe(0); // first bucket (v <= 10)
        h.observe(10); // exactly on the bound: still the first bucket
        h.observe(11); // second bucket
        h.observe(100); // exactly on the bound: second bucket
        h.observe(101); // overflow
        assert_eq!(h.counts(), vec![2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 222);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("x_total", "Xs.", &[("kind", "a")]);
        let g = r.gauge("depth", "Depth.", &[]);
        let h = r.histogram("lat", "Latency.", &[], &[1, 2]);
        c.add(7);
        g.set(-3);
        h.observe(1);
        h.observe(9);
        let snap = r.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(snap.counter("x_total", &[("kind", "a")]), Some(7));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("lat_us", "Latency.", &[], &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("lat_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_us_sum 555\n"));
        assert!(text.contains("lat_us_count 3\n"));
    }

    #[test]
    fn service_metrics_count_known_and_unknown_kinds() {
        let m = ServiceMetrics::new();
        m.count_request("run", true);
        m.count_request("run", true);
        m.count_request("run", false);
        m.count_request("frobnicate", true); // ignored, not a panic
        let snap = m.snapshot();
        assert_eq!(
            snap.counter("spade_requests_total", &[("cmd", "run"), ("outcome", "ok")]),
            Some(2)
        );
        assert_eq!(
            snap.counter(
                "spade_requests_total",
                &[("cmd", "run"), ("outcome", "error")]
            ),
            Some(1)
        );
    }

    #[test]
    fn snapshots_are_deterministic_under_concurrent_updates() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("ops_total", "Ops.", &[]);
        let h = r.histogram("lat", "Latency.", &[], &[10, 100, 1_000]);
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        c.inc();
                        h.observe((t * 1_000 + i) % 2_000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Once the writers are quiescent, every observation is accounted
        // for exactly once, and repeated snapshots are identical — the
        // properties the drain summary and scrape tests rely on.
        let snap = r.snapshot();
        assert_eq!(snap.counter("ops_total", &[]), Some(8_000));
        let lat = snap.find("lat", &[]).expect("lat sample");
        assert_eq!(lat.histogram_count(), Some(8_000));
        assert_eq!(snap, r.snapshot());
    }
}
