//! Figure 9: speedup of the SPADE variants and the GPU (ignoring data
//! transfers) over the CPU, for SpMM and SDDMM at K = 32 and K = 128.
//!
//! Paper headline (averages over all four panels): SPADE Base 1.67×,
//! SPADE Opt 2.32×, SPADE2 Base 3.52× over the CPU; 1.03× / 1.34× / 2.00×
//! over the GPU. Low-RU matrices favour the GPU's higher bandwidth;
//! high/medium-RU matrices favour SPADE Opt's flexibility.
//!
//! All SPADE simulations for one panel (per graph: Base + the Opt
//! candidate sweep + the scaled-up SPADE2 Base) go through the parallel
//! experiment engine as one job list; the Base job is Arc-identical to
//! the candidate sweep's trailing Base entry, so the engine simulates it
//! once per graph.

use std::sync::Arc;

use spade_bench::parallel::{self, Job};
use spade_bench::{
    bench_pes, bench_scale, fast_mode, full_search, machines, runner, suite::Workload, table,
};
use spade_core::Primitive;
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let spade1 = Arc::new(machines::spade_system(pes));
    let spade2 = Arc::new(spade1.scaled_up(2));
    let cpu = machines::cpu_model();
    let gpu = machines::gpu_model();
    let ks: &[usize] = if fast_mode() { &[32] } else { &[32, 128] };
    let kernels: &[Primitive] = if fast_mode() {
        &[Primitive::Spmm]
    } else {
        &[Primitive::Spmm, Primitive::Sddmm]
    };

    let mut all_base = Vec::new();
    let mut all_opt = Vec::new();
    let mut all_s2 = Vec::new();
    let mut all_gpu = Vec::new();

    for &kernel in kernels {
        for &k in ks {
            table::banner(
                &format!(
                    "Figure 9: {kernel} K={k} — speedup over the {}-core CPU",
                    cpu.config().cores
                ),
                &format!(
                    "{pes}-PE SPADE, suite scale {scale:?}; GPU ignores host-device transfers."
                ),
            );

            // One shared workload per graph; one job list for the whole
            // panel. Per graph the list holds: the Opt candidate sweep
            // (whose last entry IS the Base plan), then SPADE2 Base.
            let workloads: Vec<Arc<Workload>> = Benchmark::ALL
                .iter()
                .map(|&b| Arc::new(Workload::prepare(b, scale, k)))
                .collect();
            let mut jobs = Vec::new();
            let mut candidate_plans = Vec::new();
            for w in &workloads {
                let plans = runner::opt_candidates(w, !full_search());
                for &plan in &plans {
                    jobs.push(Job::new(w, &spade1, kernel, plan));
                }
                jobs.push(Job::new(w, &spade2, kernel, machines::base_plan(&w.a)));
                candidate_plans.push(plans);
            }
            let reports = parallel::run_and_summarize(&jobs);

            let mut rows = Vec::new();
            let mut cursor = 0;
            for (w, plans) in workloads.iter().zip(&candidate_plans) {
                let searched = &reports[cursor..cursor + plans.len()];
                // The Base plan is the trailing candidate by contract.
                let base = searched.last().expect("non-empty candidates").clone();
                let (opt_plan, opt) = runner::select_opt(plans, searched);
                let s2 = reports[cursor + plans.len()].clone();
                cursor += plans.len() + 1;

                let cpu_ns = match kernel {
                    Primitive::Spmm => cpu.run_spmm(&w.a, w.b_for_spmm()).report.kernel_ns,
                    Primitive::Sddmm => cpu.run_sddmm(&w.a, &w.b, &w.c_t).report.kernel_ns,
                };
                let (gpu_ns, fits) = match kernel {
                    Primitive::Spmm => {
                        let g = gpu.run_spmm(&w.a, w.b_for_spmm());
                        (g.report.kernel_ns, g.fits_memory)
                    }
                    Primitive::Sddmm => {
                        let g = gpu.run_sddmm(&w.a, &w.b, &w.c_t);
                        (g.report.kernel_ns, g.fits_memory)
                    }
                };
                // Paper convention: speedup 1 when the matrix does not fit
                // the GPU memory.
                let gpu_speedup = if fits { cpu_ns / gpu_ns } else { 1.0 };

                let (bs, os, s2s) = (
                    cpu_ns / base.time_ns,
                    cpu_ns / opt.time_ns,
                    cpu_ns / s2.time_ns,
                );
                all_base.push(bs);
                all_opt.push(os);
                all_s2.push(s2s);
                all_gpu.push(gpu_speedup);
                rows.push(vec![
                    w.name.clone(),
                    w.benchmark
                        .expect("suite workload")
                        .expected_ru()
                        .to_string(),
                    table::f2(gpu_speedup),
                    table::f2(bs),
                    table::f2(os),
                    table::f2(s2s),
                    format!(
                        "rp={} cp={} {:?} barriers={}",
                        opt_plan.tiling.row_panel_size,
                        if opt_plan.tiling.col_panel_size >= w.a.num_cols() {
                            "all".to_string()
                        } else {
                            opt_plan.tiling.col_panel_size.to_string()
                        },
                        opt_plan.r_policy,
                        opt_plan.barriers.is_enabled(),
                    ),
                ]);
            }
            table::print_table(
                &[
                    "Graph",
                    "RU",
                    "GPU(kernel)",
                    "SPADE Base",
                    "SPADE Opt",
                    "SPADE2 Base",
                    "Opt plan",
                ],
                &rows,
            );
        }
    }

    table::banner("Figure 9 summary (geometric means over all panels)", "");
    table::print_table(
        &["Variant", "Speedup vs CPU", "Paper"],
        &[
            vec![
                "GPU (kernel)".into(),
                table::f2(runner::geomean(&all_gpu)),
                "~1.7".into(),
            ],
            vec![
                "SPADE Base".into(),
                table::f2(runner::geomean(&all_base)),
                "1.67".into(),
            ],
            vec![
                "SPADE Opt".into(),
                table::f2(runner::geomean(&all_opt)),
                "2.32".into(),
            ],
            vec![
                "SPADE2 Base".into(),
                table::f2(runner::geomean(&all_s2)),
                "3.52".into(),
            ],
        ],
    );
}
