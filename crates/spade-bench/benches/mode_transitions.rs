//! §7.D: overhead of CPU↔SPADE mode transitions.
//!
//! Paper numbers: the SPADE→CPU transition (writing back and invalidating
//! the PEs' L1s, BBFs and victim caches) costs on average 0.2 % of the
//! SPADE-mode duration; the cold-cache start-up overhead is 0.9 %; the
//! CPU→SPADE transition is negligible for SpMM and ~3.4 % for SDDMM.

use spade_bench::{bench_pes, bench_scale, fast_mode, machines, runner, suite::Workload, table};
use spade_core::{run_spmm_checked, Primitive, SpadeSystem};
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = machines::spade_system(pes);
    let benches: &[Benchmark] = if fast_mode() {
        &[Benchmark::Kro, Benchmark::Roa]
    } else {
        &Benchmark::ALL
    };

    table::banner(
        "Mode-transition overheads (§7.D), SpMM and SDDMM K=32",
        "Termination = SPADE→CPU write-back & invalidate; start-up = cold caches.",
    );
    let mut rows = Vec::new();
    let mut term_fracs = Vec::new();
    let mut startup_fracs = Vec::new();
    let mut sddmm_fracs = Vec::new();
    for &b in benches {
        let w = Workload::prepare(b, scale, 32);

        // Termination overhead, straight from the report.
        let spmm = runner::run_base(&cfg, &w, Primitive::Spmm);
        term_fracs.push(spmm.termination_fraction().max(1e-6));

        // Start-up overhead: cold run vs warm re-run of the same kernel.
        let plan = machines::base_plan(&w.a);
        let mut sys = SpadeSystem::new(cfg.clone());
        sys.keep_warm(true);
        let cold = run_spmm_checked(&mut sys, &w.a, w.b_for_spmm(), &plan);
        let warm = run_spmm_checked(&mut sys, &w.a, w.b_for_spmm(), &plan);
        let startup = (cold.report.time_ns - warm.report.time_ns).max(0.0) / cold.report.time_ns;
        startup_fracs.push(startup.max(1e-6));

        // SDDMM termination (the paper's CPU→SPADE SDDMM cost comes from
        // flushing the rMatrix; here we report the symmetric SPADE-side
        // flush, which includes the output-value drain).
        let sddmm = runner::run_base(&cfg, &w, Primitive::Sddmm);
        sddmm_fracs.push(sddmm.termination_fraction().max(1e-6));

        rows.push(vec![
            b.short_name().to_string(),
            table::pct(spmm.termination_fraction()),
            table::pct(startup),
            table::pct(sddmm.termination_fraction()),
        ]);
    }
    table::print_table(
        &[
            "Graph",
            "SpMM termination",
            "Start-up (cold)",
            "SDDMM termination",
        ],
        &rows,
    );
    println!(
        "\nAverages — termination: {} (paper 0.2%), start-up: {} (paper 0.9%), SDDMM flush: {} (paper 3.4%)",
        table::pct(runner::geomean(&term_fracs)),
        table::pct(runner::geomean(&startup_fracs)),
        table::pct(runner::geomean(&sddmm_fracs)),
    );
}
