//! Figure 14: breakdown of the power consumed in SPADE-mode execution for
//! SpMM with K=32, into the SPADE PEs (with L1s, BBFs and victim caches),
//! the L2 caches, the LLC, and DRAM.
//!
//! Paper reading: the PE group consumes only ~14 % of total power on
//! average; cache power is low because the sparse matrix (and sometimes
//! the rMatrix) bypasses the caches; DRAM accounts for more than 50 %.

use spade_bench::{bench_pes, bench_scale, machines, runner, suite::Workload, table};
use spade_core::Primitive;
use spade_energy::EnergyModel;
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = machines::spade_system(pes);
    let energy = EnergyModel::spade_10nm();

    table::banner(
        "Figure 14: SPADE-mode power breakdown, SpMM K=32",
        "Columns are fractions of total power per benchmark.",
    );
    let mut rows = Vec::new();
    let mut pe_fracs = Vec::new();
    let mut dram_fracs = Vec::new();
    for b in Benchmark::ALL {
        let w = Workload::prepare(b, scale, 32);
        let report = runner::run_base(&cfg, &w, Primitive::Spmm);
        let breakdown = energy.power_breakdown(&report, pes);
        let f = breakdown.fractions();
        pe_fracs.push(f[0]);
        dram_fracs.push(f[3]);
        rows.push(vec![
            b.short_name().to_string(),
            table::pct(f[0]),
            table::pct(f[1]),
            table::pct(f[2]),
            table::pct(f[3]),
            format!("{:.1} W", breakdown.total_w()),
        ]);
    }
    table::print_table(
        &["Graph", "PEs+L1+BBF+VC", "L2", "LLC", "DRAM", "Total"],
        &rows,
    );
    println!(
        "\nAverage PE-group share: {} (paper: ~14%); average DRAM share: {} (paper: >50%)",
        table::pct(runner::geomean(&pe_fracs)),
        table::pct(runner::geomean(&dram_fracs)),
    );
}
