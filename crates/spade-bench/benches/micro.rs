//! Micro-benchmarks of the core data structures: cache lookups, VRF
//! tag-CAM allocation, tiling, and the gold kernels. These guard the
//! simulator's own performance (host seconds per simulated cycle).
//!
//! Plain timing harness (the workspace is dependency-free): each target
//! is warmed up, then timed over enough iterations to smooth noise, and
//! reported as ns/iter.

use std::time::Instant;

use spade_core::vrf::{AllocOutcome, Vrf};
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::{reference, DenseMatrix, TiledCoo, TilingConfig};
use spade_sim::{Cache, CacheConfig, DataClass};

/// Times `f` and prints ns/iter: a short warm-up, then batches until
/// ~200 ms of measurement have accumulated.
fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..100 {
        f();
    }
    let mut iters = 0u64;
    let mut batch = 100u64;
    let start = Instant::now();
    while start.elapsed().as_millis() < 200 {
        for _ in 0..batch {
            f();
        }
        iters += batch;
        batch = batch.saturating_mul(2).min(1 << 20);
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<32} {ns:>12.1} ns/iter  ({iters} iters)");
}

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 8));
    let mut line = 0u64;
    bench("cache_access_32k_8way", || {
        line = (line
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493))
            % 65_536;
        std::hint::black_box(cache.access(line, line.is_multiple_of(4)));
    });
}

fn bench_vrf() {
    let mut vrf = Vrf::new(64);
    let mut line = 0u64;
    bench("vrf_lookup_or_alloc_64", || {
        line = (line + 17) % 256;
        match vrf.lookup_or_alloc(line, DataClass::CMatrix) {
            AllocOutcome::Allocated(id) => vrf.set_ready(id),
            AllocOutcome::Reused(_) => {}
            AllocOutcome::Stall => {
                vrf.drain_dirty();
            }
        }
    });
}

fn bench_tiling() {
    let a = Benchmark::Kro.generate(Scale::Tiny);
    bench("tile_kro_tiny_16x1024", || {
        std::hint::black_box(TiledCoo::new(&a, TilingConfig::new(16, 1024).unwrap()).unwrap());
    });
}

fn bench_kernels() {
    let a = Benchmark::Del.generate(Scale::Tiny);
    let b = DenseMatrix::from_fn(a.num_cols(), 32, |r, cc| ((r + cc) % 7) as f32);
    bench("reference_spmm_del_tiny_k32", || {
        std::hint::black_box(reference::spmm(&a, &b));
    });
    let c_t = DenseMatrix::from_fn(a.num_cols(), 32, |r, cc| ((r * cc) % 5) as f32);
    bench("reference_sddmm_del_tiny_k32", || {
        std::hint::black_box(reference::sddmm(&a, &b, &c_t));
    });
}

fn main() {
    bench_cache();
    bench_vrf();
    bench_tiling();
    bench_kernels();
}
