//! Criterion micro-benchmarks of the core data structures: cache lookups,
//! VRF tag-CAM allocation, tiling, and the gold kernels. These guard the
//! simulator's own performance (host seconds per simulated cycle).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spade_core::vrf::{AllocOutcome, Vrf};
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::{reference, DenseMatrix, TiledCoo, TilingConfig};
use spade_sim::{Cache, CacheConfig, DataClass};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_32k_8way", |bencher| {
        let mut cache = Cache::new(CacheConfig::new(32 * 1024, 8));
        let mut line = 0u64;
        bencher.iter(|| {
            line = (line * 2862933555777941757 + 3037000493) % 65_536;
            std::hint::black_box(cache.access(line, line % 4 == 0));
        });
    });
}

fn bench_vrf(c: &mut Criterion) {
    c.bench_function("vrf_lookup_or_alloc_64", |bencher| {
        let mut vrf = Vrf::new(64);
        let mut line = 0u64;
        bencher.iter(|| {
            line = (line + 17) % 256;
            match vrf.lookup_or_alloc(line, DataClass::CMatrix) {
                AllocOutcome::Allocated(id) => vrf.set_ready(id),
                AllocOutcome::Reused(_) => {}
                AllocOutcome::Stall => {
                    vrf.drain_dirty();
                }
            }
        });
    });
}

fn bench_tiling(c: &mut Criterion) {
    let a = Benchmark::Kro.generate(Scale::Tiny);
    c.bench_function("tile_kro_tiny_16x1024", |bencher| {
        bencher.iter_batched(
            || a.clone(),
            |a| TiledCoo::new(&a, TilingConfig::new(16, 1024).unwrap()).unwrap(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_kernels(c: &mut Criterion) {
    let a = Benchmark::Del.generate(Scale::Tiny);
    let b = DenseMatrix::from_fn(a.num_cols(), 32, |r, cc| ((r + cc) % 7) as f32);
    c.bench_function("reference_spmm_del_tiny_k32", |bencher| {
        bencher.iter(|| std::hint::black_box(reference::spmm(&a, &b)));
    });
    let c_t = DenseMatrix::from_fn(a.num_cols(), 32, |r, cc| ((r * cc) % 5) as f32);
    c.bench_function("reference_sddmm_del_tiny_k32", |bencher| {
        bencher.iter(|| std::hint::black_box(reference::sddmm(&a, &b, &c_t)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cache, bench_vrf, bench_tiling, bench_kernels
}
criterion_main!(benches);
