//! Figure 2: GPU execution times of a single SpMM iteration (including
//! host↔device transfer and address-mapping overhead) normalized to CPU
//! execution times.
//!
//! Paper headline: counting kernel time only, the GPU always beats the
//! CPU; counting the transfer, the GPU is always much slower — the
//! transfer accounts for ~97 % of total time on average.

use spade_bench::{bench_scale, machines, runner, suite::Workload, table};
use spade_matrix::generators::Benchmark;

fn main() {
    let cpu = machines::cpu_model();
    let gpu = machines::gpu_model();
    let xfer = machines::transfer_model();
    let scale = bench_scale();

    let mut fractions = Vec::new();
    for &k in &[32usize, 128] {
        table::banner(
            &format!("Figure 2: single SpMM iteration, K={k} — GPU vs CPU"),
            "GPU total = kernel + host-device transfer + address mapping.",
        );
        let mut rows = Vec::new();
        for b in Benchmark::ALL {
            let w = Workload::prepare(b, scale, k);
            let cpu_ns = cpu.run_spmm(&w.a, w.b_for_spmm()).report.kernel_ns;
            let g = gpu.run_spmm(&w.a, w.b_for_spmm());
            let transfer_ns = xfer.spmm_roundtrip_ns(&w.a, w.b_for_spmm());
            let total = g.report.kernel_ns + transfer_ns;
            let frac = transfer_ns / total;
            fractions.push(frac);
            rows.push(vec![
                b.short_name().to_string(),
                table::f2(g.report.kernel_ns / cpu_ns),
                table::f2(total / cpu_ns),
                table::pct(frac),
            ]);
        }
        table::print_table(
            &[
                "Graph",
                "GPU kernel / CPU",
                "GPU total / CPU",
                "Transfer share",
            ],
            &rows,
        );
    }
    println!(
        "\nAverage transfer share of total GPU time: {} (paper: ~97%)",
        table::pct(runner::geomean(&fractions))
    );
}
