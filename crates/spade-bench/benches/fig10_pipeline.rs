//! Figure 10: impact of progressively adding system features (Table 4
//! CFG0 → CFG5) on DRAM accesses, LLC accesses, requests per cycle and
//! execution time, for three link latencies (60/480/960 ns).
//!
//! Paper reading: CFG1–CFG3 raise requests/cycle without reducing LLC or
//! DRAM traffic (more latency tolerance); CFG4 and CFG5 raise
//! requests/cycle while *cutting* LLC and DRAM accesses (lower average
//! latency). The gains of the progressive optimizations grow with the
//! link latency.

use spade_bench::{bench_pes, bench_scale, fast_mode, machines, runner, suite::Workload, table};
use spade_core::{Primitive, SystemConfig};
use spade_matrix::generators::Benchmark;
use spade_sim::ns_to_cycles;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let base = machines::spade_system(pes);
    let benches: &[Benchmark] = if fast_mode() {
        &[Benchmark::Kro, Benchmark::Del, Benchmark::Roa]
    } else if spade_bench::full_search() {
        &Benchmark::ALL
    } else {
        // Two representatives per RU class keep the default run short;
        // SPADE_BENCH_FULL=1 uses all ten like the paper.
        &[
            Benchmark::Del,
            Benchmark::Roa,
            Benchmark::Liv,
            Benchmark::Ser,
            Benchmark::Ork,
            Benchmark::Kro,
        ]
    };
    let lls: &[f64] = if fast_mode() {
        &[60.0, 960.0]
    } else {
        &[60.0, 480.0, 960.0]
    };

    let workloads: Vec<Workload> = benches
        .iter()
        .map(|&b| Workload::prepare(b, scale, 32))
        .collect();

    // Reference: CFG0 at 60 ns.
    let mut reference: Option<[Vec<f64>; 4]> = None;

    for &ll_ns in lls {
        table::banner(
            &format!("Figure 10: SpMM K=32, link latency = {ll_ns} ns"),
            "Geometric means over the suite, normalized to CFG0 at 60 ns.",
        );
        let mut rows = Vec::new();
        for level in 0..=5u8 {
            let mut dram = Vec::new();
            let mut llc = Vec::new();
            let mut rpc = Vec::new();
            let mut time = Vec::new();
            for w in &workloads {
                let report = if level == 5 {
                    // CFG5 = CFG4 + flexible execution (SPADE Opt); the
                    // paper evaluates it at 60 ns only.
                    if (ll_ns - 60.0).abs() > 1.0 {
                        continue;
                    }
                    let mut cfg = SystemConfig::table4_cfg(&base, 4);
                    cfg.mem.link_latency = ns_to_cycles(ll_ns);
                    runner::find_opt(&cfg, w, Primitive::Spmm, true).1
                } else {
                    let mut cfg = SystemConfig::table4_cfg(&base, level);
                    cfg.mem.link_latency = ns_to_cycles(ll_ns);
                    runner::run_base(&cfg, w, Primitive::Spmm)
                };
                dram.push(report.dram_accesses.max(1) as f64);
                llc.push(report.llc_accesses.max(1) as f64);
                rpc.push(report.requests_per_cycle.max(1e-9));
                time.push(report.time_ns);
            }
            if dram.is_empty() {
                continue;
            }
            let metrics = [
                runner::geomean(&dram),
                runner::geomean(&llc),
                runner::geomean(&rpc),
                runner::geomean(&time),
            ];
            if reference.is_none() {
                reference = Some([dram.clone(), llc.clone(), rpc.clone(), time.clone()]);
            }
            let base_metrics: Vec<f64> = reference
                .as_ref()
                .expect("reference set on first row")
                .iter()
                .map(|v| runner::geomean(v))
                .collect();
            rows.push(vec![
                format!("CFG{level}"),
                table::f2(metrics[0] / base_metrics[0]),
                table::f2(metrics[1] / base_metrics[1]),
                table::f2(metrics[2] / base_metrics[2]),
                table::f2(metrics[3] / base_metrics[3]),
            ]);
        }
        table::print_table(
            &[
                "Config",
                "DRAM accesses",
                "LLC accesses",
                "Requests/cycle",
                "Execution time",
            ],
            &rows,
        );
    }
}
