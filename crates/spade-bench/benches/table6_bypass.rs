//! Table 6: percentage change in execution time from bypassing the caches
//! for the rMatrix (staging in the BBF victim cache), applied on top of
//! each benchmark's best tile/barrier setting. Positive numbers are
//! slowdowns.
//!
//! Paper reading: beneficial for most benchmarks (up to −32.9 %, ORK SpMM
//! K=128), but harmful when the reused rMatrix working set overflows the
//! victim cache (+169.2 %, KRO SpMM K=32 with its large row panel).
//!
//! Two fan-outs through the parallel experiment engine: the cache-only
//! search grid for every (combo, graph), then the bypass re-run of each
//! winner.

use std::collections::HashMap;
use std::sync::Arc;

use spade_bench::parallel::{self, Job};
use spade_bench::{bench_pes, bench_scale, fast_mode, machines, suite::Workload, table};
use spade_core::{ExecutionPlan, Primitive, RMatrixPolicy};
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = Arc::new(machines::spade_system(pes));
    let combos: &[(Primitive, usize)] = if fast_mode() {
        &[(Primitive::Spmm, 32)]
    } else if spade_bench::full_search() {
        &[
            (Primitive::Spmm, 32),
            (Primitive::Sddmm, 32),
            (Primitive::Spmm, 128),
            (Primitive::Sddmm, 128),
        ]
    } else {
        &[(Primitive::Spmm, 32), (Primitive::Sddmm, 32)]
    };

    table::banner(
        "Table 6: % change in execution time from rMatrix cache bypass",
        "Applied on top of the best tile/barrier setting. Positive = slowdown.",
    );

    // Stage 1: best setting with caching (search restricted to the Cache
    // policy), across every combo × graph as one job list.
    let mut workloads: HashMap<(Benchmark, usize), Arc<Workload>> = HashMap::new();
    let mut search_jobs = Vec::new();
    let mut search_plans = Vec::new(); // (workload, kernel, plans) per cell
    for &(kernel, k) in combos {
        for &b in &Benchmark::ALL {
            let w = workloads
                .entry((b, k))
                .or_insert_with(|| Arc::new(Workload::prepare(b, scale, k)))
                .clone();
            let mut space = machines::quick_search_space(k);
            space.r_policies = vec![RMatrixPolicy::Cache];
            if w.a.num_rows() < 4_096 {
                space = space.with_row_panel(2);
            }
            let plans = space.enumerate(&w.a);
            for &plan in &plans {
                search_jobs.push(Job::new(&w, &cfg, kernel, plan));
            }
            search_plans.push((w, kernel, plans));
        }
    }
    let search_reports = parallel::run_and_summarize(&search_jobs);

    // Pick each cell's winner; stage 2 re-runs it with the rMatrix
    // bypassed into the victim cache.
    let mut bypass_jobs = Vec::new();
    let mut cached_ns = Vec::new();
    let mut cursor = 0;
    for (w, kernel, plans) in &search_plans {
        let cell = &search_reports[cursor..cursor + plans.len()];
        cursor += plans.len();
        let mut best: Option<(ExecutionPlan, f64)> = None;
        for (plan, r) in plans.iter().zip(cell) {
            if best.as_ref().is_none_or(|(_, t)| r.time_ns < *t) {
                best = Some((*plan, r.time_ns));
            }
        }
        let (best_plan, ns) = best.expect("search space is non-empty");
        let bypass_plan = ExecutionPlan {
            r_policy: RMatrixPolicy::BypassVictim,
            ..best_plan
        };
        bypass_jobs.push(Job::new(w, &cfg, *kernel, bypass_plan));
        cached_ns.push(ns);
    }
    let bypass_reports = parallel::run_and_summarize(&bypass_jobs);

    let mut rows = Vec::new();
    let mut cell = 0;
    for &(kernel, k) in combos {
        let mut row = vec![format!("{kernel}{k}")];
        for _ in Benchmark::ALL {
            let change = (bypass_reports[cell].time_ns - cached_ns[cell]) / cached_ns[cell] * 100.0;
            cell += 1;
            row.push(format!("{change:+.1}"));
        }
        rows.push(row);
    }
    let mut header = vec!["Algorithm & K"];
    let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.short_name()).collect();
    header.extend(names.iter());
    table::print_table(&header, &rows);
    println!("\nPaper shape: mostly negative (bypass helps); large positive outliers when");
    println!("the rMatrix working set overflows the victim cache (KRO SpMM K=32).");
}
