//! Table 6: percentage change in execution time from bypassing the caches
//! for the rMatrix (staging in the BBF victim cache), applied on top of
//! each benchmark's best tile/barrier setting. Positive numbers are
//! slowdowns.
//!
//! Paper reading: beneficial for most benchmarks (up to −32.9 %, ORK SpMM
//! K=128), but harmful when the reused rMatrix working set overflows the
//! victim cache (+169.2 %, KRO SpMM K=32 with its large row panel).

use spade_bench::{bench_pes, bench_scale, fast_mode, machines, runner, suite::Workload, table};
use spade_core::{ExecutionPlan, Primitive, RMatrixPolicy};
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = machines::spade_system(pes);
    let combos: &[(Primitive, usize)] = if fast_mode() {
        &[(Primitive::Spmm, 32)]
    } else if spade_bench::full_search() {
        &[
            (Primitive::Spmm, 32),
            (Primitive::Sddmm, 32),
            (Primitive::Spmm, 128),
            (Primitive::Sddmm, 128),
        ]
    } else {
        &[(Primitive::Spmm, 32), (Primitive::Sddmm, 32)]
    };

    table::banner(
        "Table 6: % change in execution time from rMatrix cache bypass",
        "Applied on top of the best tile/barrier setting. Positive = slowdown.",
    );
    let mut rows = Vec::new();
    for &(kernel, k) in combos {
        let mut row = vec![format!("{kernel}{k}")];
        for b in Benchmark::ALL {
            let w = Workload::prepare(b, scale, k);
            // Best setting with caching (search restricted to Cache
            // policy), then flip the rMatrix to bypass+victim.
            let mut space = machines::quick_search_space(k);
            space.r_policies = vec![RMatrixPolicy::Cache];
            if w.a.num_rows() < 4_096 {
                space = space.with_row_panel(2);
            }
            let mut best: Option<(ExecutionPlan, f64)> = None;
            for plan in space.enumerate(&w.a) {
                let r = runner::run_spade(&cfg, &w, kernel, &plan);
                if best.as_ref().map_or(true, |(_, t)| r.time_ns < *t) {
                    best = Some((plan, r.time_ns));
                }
            }
            let (best_plan, cached_ns) = best.expect("search space is non-empty");
            let bypass_plan = ExecutionPlan {
                r_policy: RMatrixPolicy::BypassVictim,
                ..best_plan
            };
            let bypass = runner::run_spade(&cfg, &w, kernel, &bypass_plan);
            let change = (bypass.time_ns - cached_ns) / cached_ns * 100.0;
            row.push(format!("{change:+.1}"));
        }
        rows.push(row);
    }
    let mut header = vec!["Algorithm & K"];
    let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.short_name()).collect();
    header.extend(names.iter());
    table::print_table(&header, &rows);
    println!("\nPaper shape: mostly negative (bypass helps); large positive outliers when");
    println!("the rMatrix working set overflows the victim cache (KRO SpMM K=32).");
}
