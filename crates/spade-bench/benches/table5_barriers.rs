//! Table 5: percentage change in execution time from applying scheduling
//! barriers, at the medium row/column panel sizes with no cache bypassing.
//! Positive numbers are slowdowns.
//!
//! Paper reading: matrix-dependent — up to +80.5 % (ASI SpMM K=128) and
//! down to −57.1 % (ORK SpMM K=128). High-RU matrices benefit; low-RU
//! matrices are hurt.
//!
//! Every (combo, graph, barriers on/off) cell is one job; the whole table
//! runs as a single fan-out through the parallel experiment engine.

use std::collections::HashMap;
use std::sync::Arc;

use spade_bench::parallel::{self, Job};
use spade_bench::{bench_pes, bench_scale, fast_mode, machines, suite::Workload, table};
use spade_core::{BarrierPolicy, CMatrixPolicy, ExecutionPlan, Primitive, RMatrixPolicy};
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = Arc::new(machines::spade_system(pes));
    let combos: &[(Primitive, usize)] = if fast_mode() {
        &[(Primitive::Spmm, 32)]
    } else if spade_bench::full_search() {
        &[
            (Primitive::Spmm, 32),
            (Primitive::Sddmm, 32),
            (Primitive::Spmm, 128),
            (Primitive::Sddmm, 128),
        ]
    } else {
        &[(Primitive::Spmm, 32), (Primitive::Sddmm, 32)]
    };

    table::banner(
        "Table 5: % change in execution time from scheduling barriers",
        "Medium RP/CP, no bypassing. Positive numbers are slowdowns.",
    );

    // Workloads are shared across the two barrier settings of each combo
    // (and across combos with the same K).
    let mut workloads: HashMap<(Benchmark, usize), Arc<Workload>> = HashMap::new();
    let mut jobs = Vec::new();
    for &(kernel, k) in combos {
        for &b in &Benchmark::ALL {
            let w = workloads
                .entry((b, k))
                .or_insert_with(|| Arc::new(Workload::prepare(b, scale, k)))
                .clone();
            let space = machines::search_space(k);
            // The smallest row panel of the scaled space plays the role of
            // the paper's "medium" 256-row panel: it keeps several row
            // panels per PE, which is what gives barriers room to help.
            let rp = space.row_panels[0];
            // A "medium" column panel must actually partition the matrix:
            // use an eighth of the columns (the paper's 524288-column
            // medium panel is a comparable fraction of its matrices),
            // bounded by the absolute medium size of the search space.
            let cp = (w.a.num_cols() / 8).clamp(64, space.col_panels[1]);
            for barriers in [BarrierPolicy::None, BarrierPolicy::per_column_panel()] {
                let plan = ExecutionPlan::with_knobs(
                    rp,
                    cp,
                    RMatrixPolicy::Cache,
                    CMatrixPolicy::Cache,
                    barriers,
                )
                .expect("valid knobs");
                jobs.push(Job::new(&w, &cfg, kernel, plan));
            }
        }
    }
    let reports = parallel::run_and_summarize(&jobs);

    let mut rows = Vec::new();
    let mut cursor = 0;
    for &(kernel, k) in combos {
        let mut row = vec![format!("{kernel}{k}")];
        for _ in Benchmark::ALL {
            let without = &reports[cursor];
            let with = &reports[cursor + 1];
            cursor += 2;
            let change = (with.time_ns - without.time_ns) / without.time_ns * 100.0;
            row.push(format!("{change:+.1}"));
        }
        rows.push(row);
    }
    let mut header = vec!["Algorithm & K"];
    let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.short_name()).collect();
    header.extend(names.iter());
    table::print_table(&header, &rows);
    println!(
        "\nPaper shape: barriers help ORK/KRO/MYC (negative), hurt ASI/DEL/ROA/PAC (positive)."
    );
}
