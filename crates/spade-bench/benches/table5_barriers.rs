//! Table 5: percentage change in execution time from applying scheduling
//! barriers, at the medium row/column panel sizes with no cache bypassing.
//! Positive numbers are slowdowns.
//!
//! Paper reading: matrix-dependent — up to +80.5 % (ASI SpMM K=128) and
//! down to −57.1 % (ORK SpMM K=128). High-RU matrices benefit; low-RU
//! matrices are hurt.

use spade_bench::{bench_pes, bench_scale, fast_mode, machines, runner, suite::Workload, table};
use spade_core::{BarrierPolicy, CMatrixPolicy, ExecutionPlan, Primitive, RMatrixPolicy};
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = machines::spade_system(pes);
    let combos: &[(Primitive, usize)] = if fast_mode() {
        &[(Primitive::Spmm, 32)]
    } else if spade_bench::full_search() {
        &[
            (Primitive::Spmm, 32),
            (Primitive::Sddmm, 32),
            (Primitive::Spmm, 128),
            (Primitive::Sddmm, 128),
        ]
    } else {
        &[(Primitive::Spmm, 32), (Primitive::Sddmm, 32)]
    };

    table::banner(
        "Table 5: % change in execution time from scheduling barriers",
        "Medium RP/CP, no bypassing. Positive numbers are slowdowns.",
    );
    let mut rows = Vec::new();
    for &(kernel, k) in combos {
        let mut row = vec![format!("{kernel}{k}")];
        for b in Benchmark::ALL {
            let w = Workload::prepare(b, scale, k);
            let space = machines::search_space(k);
            // The smallest row panel of the scaled space plays the role of
            // the paper's "medium" 256-row panel: it keeps several row
            // panels per PE, which is what gives barriers room to help.
            let rp = space.row_panels[0];
            // A "medium" column panel must actually partition the matrix:
            // use an eighth of the columns (the paper's 524288-column
            // medium panel is a comparable fraction of its matrices),
            // bounded by the absolute medium size of the search space.
            let cp = (w.a.num_cols() / 8).clamp(64, space.col_panels[1]);
            let make = |barriers| {
                ExecutionPlan::with_knobs(
                    rp,
                    cp,
                    RMatrixPolicy::Cache,
                    CMatrixPolicy::Cache,
                    barriers,
                )
                .expect("valid knobs")
            };
            let without = runner::run_spade(&cfg, &w, kernel, &make(BarrierPolicy::None));
            let with = runner::run_spade(&cfg, &w, kernel, &make(BarrierPolicy::per_column_panel()));
            let change = (with.time_ns - without.time_ns) / without.time_ns * 100.0;
            row.push(format!("{change:+.1}"));
        }
        rows.push(row);
    }
    let mut header = vec!["Algorithm & K"];
    let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.short_name()).collect();
    header.extend(names.iter());
    table::print_table(&header, &rows);
    println!(
        "\nPaper shape: barriers help ORK/KRO/MYC (negative), hurt ASI/DEL/ROA/PAC (positive)."
    );
}
