//! Figure 12: strong-scaling analysis — speedup of SPADE2/4/8 Base
//! (2×/4×/8× the PEs, DRAM bandwidth, LLC size and link latency) over the
//! baseline SPADE system, for SpMM K=32.
//!
//! Paper reading: SPADE scales well on most benchmarks, with superlinear
//! cases from the larger LLC; MYC and KRO are the exceptions — too few
//! sparse-matrix rows, so load imbalance hinders strong scaling.

use spade_bench::{bench_pes, bench_scale, fast_mode, machines, runner, suite::Workload, table};
use spade_core::Primitive;
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let base_cfg = machines::spade_system(pes);
    let factors: &[usize] = if fast_mode() { &[2] } else { &[2, 4, 8] };

    table::banner(
        &format!("Figure 12: strong scaling of SPADE, SpMM K=32 ({pes}-PE base)"),
        "Bars: speedup of SPADEn Base over SPADE1 Base; linear would be n.",
    );
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let w = Workload::prepare(b, scale, 32);
        let base = runner::run_base(&base_cfg, &w, Primitive::Spmm);
        let mut row = vec![b.short_name().to_string()];
        for &f in factors {
            let scaled = base_cfg.scaled_up(f);
            let r = runner::run_base(&scaled, &w, Primitive::Spmm);
            row.push(table::f2(base.time_ns / r.time_ns));
        }
        rows.push(row);
    }
    let mut header = vec!["Graph"];
    let labels: Vec<String> = factors.iter().map(|f| format!("SPADE{f} Base")).collect();
    header.extend(labels.iter().map(|s| s.as_str()));
    table::print_table(&header, &rows);
    println!("\nPaper shape: near-linear (or superlinear via the larger LLC) except MYC/KRO.");
    let _ = runner::geomean(&[1.0]);
}
