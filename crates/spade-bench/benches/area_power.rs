//! §7.G: area and power evaluation — the accelerator's footprint relative
//! to its dual-socket Ice Lake host.
//!
//! Paper numbers: 224 SPADE PEs with their L1s, BBFs and victim caches
//! consume 20.3 W and 24.64 mm² at 10 nm — 4.3 % of the host's 470 W TDP
//! and 2.5 % of its ~1000 mm² combined die area.

use spade_bench::table;
use spade_energy::{AreaModel, EnergyModel, MiniSpade};

fn main() {
    let area = AreaModel::spade_10nm();
    let energy = EnergyModel::spade_10nm();
    let pes = 224;
    let host_tdp_w = 470.0;
    let host_area_mm2 = 1000.0;

    table::banner(
        "Area and power of the 224-PE SPADE accelerator at 10 nm (§7.G)",
        "",
    );
    let total_area = area.total_mm2(pes);
    let total_power = energy.pe_group_max_dynamic_w(pes);
    table::print_table(
        &["Metric", "Measured", "Paper"],
        &[
            vec![
                "Area (mm²)".into(),
                format!("{total_area:.2}"),
                "24.64".into(),
            ],
            vec![
                "Max dynamic power (W)".into(),
                format!("{total_power:.1}"),
                "20.3".into(),
            ],
            vec![
                "Area vs host die".into(),
                table::pct(area.fraction_of_host(pes, host_area_mm2)),
                "2.5%".into(),
            ],
            vec![
                "Power vs host TDP".into(),
                table::pct(total_power / host_tdp_w),
                "4.3%".into(),
            ],
        ],
    );

    table::banner("miniSPADE prototype cross-check (§6.D)", "");
    table::print_table(
        &["Metric", "Value"],
        &[
            vec![
                "Die area (65 nm)".into(),
                format!("{} mm²", MiniSpade::DIE_MM2),
            ],
            vec![
                "Power at 200 MHz".into(),
                format!("{} W", MiniSpade::POWER_W),
            ],
            vec![
                "Model consistency ratio".into(),
                format!("{:.2}", MiniSpade::area_consistency_ratio(&area)),
            ],
        ],
    );
}
