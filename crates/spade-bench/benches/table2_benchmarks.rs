//! Table 2: the benchmark graphs — nodes, edges, density and
//! Restructuring Utility, for the generated stand-in suite.

use spade_bench::{bench_scale, table};
use spade_matrix::analysis::MatrixStats;
use spade_matrix::generators::Benchmark;

fn main() {
    let scale = bench_scale();
    table::banner(
        "Table 2: Benchmark graphs evaluated",
        &format!(
            "Synthetic stand-ins at {scale:?} scale (~1/{} of SuiteSparse node counts).",
            spade_bench::SUITE_SCALE
        ),
    );
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let m = b.generate(scale);
        let s = MatrixStats::compute(&m);
        rows.push(vec![
            format!("{} ({})", b.full_name(), b.short_name()),
            b.domain().to_string(),
            format!("{:.3}", s.num_rows as f64 / 1e6),
            format!("{:.3}", s.nnz as f64 / 1e6),
            format!("1e{:.0}", s.density.log10()),
            format!("{:.1}", s.avg_degree),
            b.expected_ru().to_string(),
            s.classify_ru().to_string(),
        ]);
    }
    table::print_table(
        &[
            "Graph",
            "Domain",
            "Nodes (M)",
            "Edges (M)",
            "Density",
            "AvgDeg",
            "RU (paper)",
            "RU (classified)",
        ],
        &rows,
    );
}
