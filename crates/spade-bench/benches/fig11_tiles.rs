//! Figure 11: execution time of SpMM (K=32) across tile row-panel ×
//! column-panel settings, normalized to the worst setting, for KRO, DEL
//! and MYC.
//!
//! Paper reading: KRO (high RU) wants a small column panel and a large
//! row panel (maximizes cMatrix reuse); DEL (low RU) wants a column panel
//! spanning all columns; MYC (few rows) wants small row panels to fight
//! load imbalance.
//!
//! The whole 3-graph × 3×3-cell grid is one job list for the parallel
//! experiment engine.

use std::sync::Arc;

use spade_bench::parallel::{self, Job};
use spade_bench::{bench_pes, bench_scale, machines, runner, suite::Workload, table};
use spade_core::{BarrierPolicy, CMatrixPolicy, ExecutionPlan, Primitive, RMatrixPolicy};
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = Arc::new(machines::spade_system(pes));
    // The bench-scaled analogue of the paper's {8k, 500k, MAX} × {64, 256,
    // 1024} grid (no bypassing, no barriers).
    let col_panels = [1_024usize, 8_192, usize::MAX];
    let row_panels = [4usize, 16, 64];
    let graphs = [Benchmark::Kro, Benchmark::Del, Benchmark::Myc];

    // Build the full grid as one job list.
    let workloads: Vec<Arc<Workload>> = graphs
        .iter()
        .map(|&b| Arc::new(Workload::prepare(b, scale, 32)))
        .collect();
    let mut jobs = Vec::new();
    for w in &workloads {
        for &rp in &row_panels {
            for &cp in &col_panels {
                let plan = ExecutionPlan::with_knobs(
                    rp,
                    cp.min(w.a.num_cols().max(1)),
                    RMatrixPolicy::Cache,
                    CMatrixPolicy::Cache,
                    BarrierPolicy::None,
                )
                .expect("valid tile knobs");
                jobs.push(Job::new(w, &cfg, Primitive::Spmm, plan));
            }
        }
    }
    let reports = parallel::run_and_summarize(&jobs);

    let cells = row_panels.len() * col_panels.len();
    for (g, w) in workloads.iter().enumerate() {
        table::banner(
            &format!("Figure 11({}): SpMM K=32 tile-size sensitivity", w.name),
            "Times normalized to the worst setting; lower is better.",
        );
        let mut times = vec![vec![0f64; col_panels.len()]; row_panels.len()];
        let mut worst = 0f64;
        for (i, _) in row_panels.iter().enumerate() {
            for (j, _) in col_panels.iter().enumerate() {
                let r = &reports[g * cells + i * col_panels.len() + j];
                times[i][j] = r.time_ns;
                worst = worst.max(r.time_ns);
            }
        }
        let mut rows = Vec::new();
        for (i, &rp) in row_panels.iter().enumerate() {
            let mut row = vec![format!("RP={rp}")];
            row.extend(times[i].iter().map(|&t| table::f2(t / worst)));
            rows.push(row);
        }
        table::print_table(&["", "CP=1k", "CP=8k", "CP=MAX"], &rows);

        // Identify the best cell for the summary line.
        let (mut bi, mut bj) = (0, 0);
        for i in 0..row_panels.len() {
            for j in 0..col_panels.len() {
                if times[i][j] < times[bi][bj] {
                    (bi, bj) = (i, j);
                }
            }
        }
        println!(
            "best: RP={} CP={}",
            row_panels[bi],
            if col_panels[bj] == usize::MAX {
                "MAX".to_string()
            } else {
                col_panels[bj].to_string()
            }
        );
        let _ = runner::geomean(&[1.0]);
    }
}
