//! Figure 11: execution time of SpMM (K=32) across tile row-panel ×
//! column-panel settings, normalized to the worst setting, for KRO, DEL
//! and MYC.
//!
//! Paper reading: KRO (high RU) wants a small column panel and a large
//! row panel (maximizes cMatrix reuse); DEL (low RU) wants a column panel
//! spanning all columns; MYC (few rows) wants small row panels to fight
//! load imbalance.

use spade_bench::{bench_pes, bench_scale, machines, runner, suite::Workload, table};
use spade_core::{BarrierPolicy, CMatrixPolicy, ExecutionPlan, Primitive, RMatrixPolicy};
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = machines::spade_system(pes);
    // The bench-scaled analogue of the paper's {8k, 500k, MAX} × {64, 256,
    // 1024} grid (no bypassing, no barriers).
    let col_panels = [1_024usize, 8_192, usize::MAX];
    let row_panels = [4usize, 16, 64];

    for b in [Benchmark::Kro, Benchmark::Del, Benchmark::Myc] {
        let w = Workload::prepare(b, scale, 32);
        table::banner(
            &format!("Figure 11({}): SpMM K=32 tile-size sensitivity", b.short_name()),
            "Times normalized to the worst setting; lower is better.",
        );
        let mut times = vec![vec![0f64; col_panels.len()]; row_panels.len()];
        let mut worst = 0f64;
        for (i, &rp) in row_panels.iter().enumerate() {
            for (j, &cp) in col_panels.iter().enumerate() {
                let plan = ExecutionPlan::with_knobs(
                    rp,
                    cp.min(w.a.num_cols().max(1)),
                    RMatrixPolicy::Cache,
                    CMatrixPolicy::Cache,
                    BarrierPolicy::None,
                )
                .expect("valid tile knobs");
                let r = runner::run_spade(&cfg, &w, Primitive::Spmm, &plan);
                times[i][j] = r.time_ns;
                worst = worst.max(r.time_ns);
            }
        }
        let mut rows = Vec::new();
        for (i, &rp) in row_panels.iter().enumerate() {
            let mut row = vec![format!("RP={rp}")];
            for j in 0..col_panels.len() {
                row.push(table::f2(times[i][j] / worst));
            }
            rows.push(row);
        }
        table::print_table(&["", "CP=1k", "CP=8k", "CP=MAX"], &rows);

        // Identify the best cell for the summary line.
        let (mut bi, mut bj) = (0, 0);
        for i in 0..row_panels.len() {
            for j in 0..col_panels.len() {
                if times[i][j] < times[bi][bj] {
                    (bi, bj) = (i, j);
                }
            }
        }
        println!(
            "best: RP={} CP={}",
            row_panels[bi],
            if col_panels[bj] == usize::MAX {
                "MAX".to_string()
            } else {
                col_panels[bj].to_string()
            }
        );
        let _ = runner::geomean(&[1.0]);
    }
}
