//! Figure 13: bandwidth utilization, DRAM accesses and speedup of SPADE
//! Opt, normalized to the idealized Sextans accelerator (SpMM K=32).
//!
//! Paper headline: SPADE Opt achieves ~40 % higher average bandwidth
//! utilization, 32 % fewer memory accesses (up to 73 % for ROA), and a
//! 2.4× average speedup (max 5.1×); ideal Sextans wins marginally only on
//! ORK and LIV, whose barrier-friendly behaviour resembles Sextans'
//! batched execution. Including PCIe transfers, SPADE Opt is 52.4× faster
//! for a single iteration.

use spade_bench::{bench_pes, bench_scale, machines, runner, suite::Workload, table};
use spade_core::Primitive;
use spade_matrix::generators::Benchmark;

fn main() {
    let pes = bench_pes();
    let scale = bench_scale();
    let cfg = machines::spade_system(pes);
    let sextans = machines::sextans_model();
    let xfer = machines::transfer_model();

    table::banner(
        "Figure 13: SPADE Opt vs ideal Sextans, SpMM K=32",
        "All metrics normalized to Sextans (in increasing number of rows).",
    );
    let mut benches: Vec<Benchmark> = Benchmark::ALL.to_vec();
    benches.sort_by_key(|b| b.generate(spade_matrix::generators::Scale::Tiny).num_rows());

    let mut speedups = Vec::new();
    let mut access_ratios = Vec::new();
    let mut util_ratios = Vec::new();
    let mut xfer_speedups = Vec::new();
    let mut rows = Vec::new();
    for b in benches {
        let w = Workload::prepare(b, scale, 32);
        let s = sextans.run_spmm(&w.a, w.b_for_spmm());
        let (_, opt) = runner::find_opt(&cfg, &w, Primitive::Spmm, true);

        let util_ratio = opt.dram_utilization / s.report.utilization.max(1e-9);
        let access_ratio = opt.dram_accesses as f64 / s.report.dram_accesses.max(1) as f64;
        let speedup = s.report.kernel_ns / opt.time_ns;
        // Single-iteration comparison with the PCIe transfer Sextans needs.
        let xfer_ns = xfer.spmm_roundtrip_ns(&w.a, w.b_for_spmm());
        let xfer_speedup = (s.report.kernel_ns + xfer_ns) / opt.time_ns;

        util_ratios.push(util_ratio);
        access_ratios.push(access_ratio);
        speedups.push(speedup);
        xfer_speedups.push(xfer_speedup);
        rows.push(vec![
            b.short_name().to_string(),
            table::f2(util_ratio),
            table::f2(access_ratio),
            table::f2(speedup),
            table::f2(xfer_speedup),
        ]);
    }
    table::print_table(
        &[
            "Graph",
            "BW utilization",
            "Memory accesses",
            "Speedup",
            "Speedup (incl. PCIe)",
        ],
        &rows,
    );
    println!();
    table::print_table(
        &["Metric (average)", "Measured", "Paper"],
        &[
            vec![
                "BW utilization vs Sextans".into(),
                table::f2(runner::geomean(&util_ratios)),
                "~1.4".into(),
            ],
            vec![
                "Memory accesses vs Sextans".into(),
                table::f2(runner::geomean(&access_ratios)),
                "~0.68".into(),
            ],
            vec![
                "Speedup (kernel)".into(),
                table::f2(runner::geomean(&speedups)),
                "2.4".into(),
            ],
            vec![
                "Speedup (incl. PCIe)".into(),
                table::f2(runner::geomean(&xfer_speedups)),
                "52.4".into(),
            ],
        ],
    );
}
