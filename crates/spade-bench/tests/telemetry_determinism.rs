//! Observability must be deterministic and invisible: telemetry series and
//! event traces are bit-identical for every worker count, and enabling
//! them changes nothing about the reports the seed behavior produced.

use std::sync::Arc;

use spade_bench::machines;
use spade_bench::parallel::{Job, JobOutput, ParallelRunner};
use spade_bench::runner;
use spade_bench::suite::Workload;
use spade_core::Primitive;
use spade_matrix::generators::{Benchmark, Scale};

/// A mixed observed job list: two graphs × both primitives × a few plans,
/// all with telemetry and tracing on.
fn observed_jobs() -> Vec<Job> {
    let cfg = Arc::new(machines::spade_system(4));
    let mut jobs = Vec::new();
    for benchmark in [Benchmark::Myc, Benchmark::Kro] {
        let w = Arc::new(Workload::prepare(benchmark, Scale::Tiny, 32));
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            let plans = runner::opt_candidates(&w, true);
            for plan in plans.into_iter().take(3) {
                jobs.push(
                    Job::new(&w, &cfg, primitive, plan)
                        .with_telemetry(Some(256))
                        .with_trace(true),
                );
            }
        }
    }
    jobs
}

#[test]
fn telemetry_and_traces_are_thread_count_independent() {
    // SPADE_THREADS=1 vs 8 equivalence: each job's simulation is
    // single-threaded, so its time series and event stream cannot depend
    // on how jobs were packed onto workers.
    let jobs = observed_jobs();
    let serial: Vec<JobOutput> = ParallelRunner::new(1)
        .run_outputs(&jobs)
        .into_iter()
        .map(|r| r.expect("job failed"))
        .collect();
    let parallel: Vec<JobOutput> = ParallelRunner::new(8)
        .run_outputs(&jobs)
        .into_iter()
        .map(|r| r.expect("job failed"))
        .collect();
    // JobOutput equality covers the report, every telemetry sample, and
    // every trace event (names, timestamps, lanes, args).
    assert_eq!(parallel, serial, "8-thread artifacts diverged from serial");
    for out in &serial {
        let telemetry = out.telemetry.as_ref().expect("telemetry requested");
        assert!(!telemetry.samples.is_empty());
        let trace = out.trace.as_ref().expect("trace requested");
        assert!(!trace.is_empty());
    }
    // The rendered JSON artifacts are therefore byte-identical too.
    let a = serial[0].trace.as_ref().unwrap().to_chrome_json();
    let b = parallel[0].trace.as_ref().unwrap().to_chrome_json();
    assert_eq!(a, b);
}

#[test]
fn observability_off_matches_seed_behavior() {
    // A telemetry/trace-enabled run must report exactly what a plain run
    // reports: observation never feeds back into timing.
    let cfg = Arc::new(machines::spade_system(4));
    let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
    let plan = machines::base_plan(&w.a);
    for primitive in [Primitive::Spmm, Primitive::Sddmm] {
        let plain = Job::new(&w, &cfg, primitive, plan)
            .try_execute()
            .expect("plain job failed");
        let observed = Job::new(&w, &cfg, primitive, plan)
            .with_telemetry(Some(64))
            .with_trace(true)
            .try_execute_full()
            .expect("observed job failed");
        assert_eq!(observed.report, plain, "{primitive:?} report changed");
        // And the plain job carries no artifacts.
        let plain_full = Job::new(&w, &cfg, primitive, plan)
            .try_execute_full()
            .expect("plain job failed");
        assert!(plain_full.telemetry.is_none());
        assert!(plain_full.trace.is_none());
    }
}

#[test]
fn traced_and_untraced_duplicates_do_not_share_executions() {
    let cfg = Arc::new(machines::spade_system(4));
    let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
    let plan = machines::base_plan(&w.a);
    let plain = Job::new(&w, &cfg, Primitive::Spmm, plan);
    let traced = plain.clone().with_trace(true);
    let outputs = ParallelRunner::new(2).run_outputs(&[plain, traced]);
    let plain_out = outputs[0].as_ref().expect("plain job failed");
    let traced_out = outputs[1].as_ref().expect("traced job failed");
    assert!(plain_out.trace.is_none(), "untraced job got a trace");
    assert!(traced_out.trace.is_some(), "traced job lost its trace");
    assert_eq!(plain_out.report, traced_out.report);
}
