//! Golden-file pin of the Prometheus text exposition.
//!
//! Dashboards and scrape configs are written against metric names, label
//! sets and the exposition grammar — renames or format drift break them
//! silently. This test renders the daemon's full instrument set, driven
//! through a fixed update sequence, and compares against the committed
//! file byte for byte.
//!
//! Regenerate after an intentional change with:
//! `SPADE_UPDATE_GOLDEN=1 cargo test -p spade-bench --test metrics_exposition`

use spade_bench::cache::CacheStats;
use spade_bench::metrics::ServiceMetrics;

/// Every instrument touched at least once, with values chosen to land in
/// first, middle and overflow histogram buckets.
fn exposition() -> String {
    let m = ServiceMetrics::new();
    m.count_request("ping", true);
    m.count_request("run", true);
    m.count_request("run", true);
    m.count_request("run", false);
    m.count_request("query", true);
    m.count_request("trace", true);
    m.count_request("batch", true);
    m.count_request("advise", true);
    m.count_advise("model", 120); // interior bucket
    m.count_advise("heuristic", 40); // first bucket
    m.count_advise("exhaustive", 30_000); // overflow
    m.count_batch_job("ok");
    m.count_batch_job("ok");
    m.count_batch_job("cached");
    m.count_batch_job("rejected");
    m.count_batch_job("error");
    m.rejected_overload.add(2);
    m.bad_frames.inc();
    m.deadline_kills.inc();
    m.connections.add(5);
    m.queue_depth.set(1);
    m.in_flight.set(2);
    m.observe_cache(&CacheStats {
        hits: 3,
        misses: 2,
        stores: 2,
        quarantined: 1,
    });
    m.queue_wait_us.observe(50); // first bucket
    m.queue_wait_us.observe(700); // interior bucket
    m.exec_us.observe(30_000);
    m.exec_us.observe(70_000_000); // overflow
    m.sim_cycles.observe(250_000);
    m.snapshot().to_prometheus()
}

#[test]
fn prometheus_exposition_matches_golden() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/metrics.prom"
    );
    let text = exposition();
    if std::env::var("SPADE_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(golden_path, &text).expect("update golden exposition");
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden exposition file missing");
    assert!(
        text == golden,
        "Prometheus exposition drifted from the committed golden file \
         (regenerate with SPADE_UPDATE_GOLDEN=1 if intentional)\n--- got ---\n{text}"
    );
}
