//! Safety properties of the three-tier `advise` policy.
//!
//! Whatever tier answers — fitted model, structural heuristic, or
//! exhaustive search — the contract is the same: the returned plan must
//! actually run (valid tiling, correct SpMM result), and on the tiny
//! suite it must never be slower than the SPADE Base plan the user would
//! have gotten for free. The fuzz leg drives the tiers over mutated
//! MatrixMarket documents, so structurally weird-but-parsable matrices
//! (empty rows, single columns, duplicate-free noise) are covered, not
//! just the curated benchmark generators. Seeded with the in-tree
//! `Rng64`, so failures reproduce exactly.

use std::io::Cursor;

use spade_bench::model::{CostModel, TrainingRow};
use spade_bench::runner::find_opt;
use spade_bench::suite::Workload;
use spade_core::advisor::{advise, advise_tiered, AdviseSource};
use spade_core::{
    run_spmm_checked, ExecutionPlan, Primitive, RMatrixPolicy, SpadeSystem, SystemConfig,
};
use spade_matrix::analysis::MatrixFeatures;
use spade_matrix::generators::{Benchmark, Scale};
use spade_matrix::mm::{read_matrix_market, write_matrix_market};
use spade_matrix::rng::Rng64;
use spade_matrix::{Coo, DenseMatrix};

/// A confident cost model fitted on an exactly log-linear synthetic law
/// (`cycles = row_panel * 1000`), so `fit` converges with a tiny holdout
/// error and `confident()` is true without running any simulation.
fn synthetic_model() -> CostModel {
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let a = b.generate(Scale::Tiny);
        let f = MatrixFeatures::compute(&a).as_vec();
        for rp in [64usize, 256, 1024] {
            for cp in [a.num_cols().max(1), 512] {
                for r_policy in [RMatrixPolicy::Cache, RMatrixPolicy::BypassVictim] {
                    rows.push(TrainingRow {
                        benchmark: b.short_name().to_string(),
                        features: f.clone(),
                        row_panel: rp,
                        col_panel: cp,
                        r_policy,
                        barriers: false,
                        k: 16,
                        pes: 4,
                        cycles: (rp as u64) * 1000,
                    });
                }
            }
        }
    }
    CostModel::fit(&rows).expect("fit synthetic model")
}

/// A well-formed seed document to mutate (same recipe as `mm_fuzz`).
fn seed_doc(rng: &mut Rng64) -> Vec<u8> {
    let n = rng.gen_range(4..24usize);
    let mut triplets = Vec::new();
    for _ in 0..rng.gen_range(1..48usize) {
        triplets.push((
            rng.gen_range(0..n) as u32,
            rng.gen_range(0..n) as u32,
            rng.gen_range(1..1000u32) as f32 * 0.125,
        ));
    }
    triplets.sort_by_key(|t| (t.0, t.1));
    triplets.dedup_by_key(|t| (t.0, t.1));
    let coo = Coo::from_triplets(n, n, &triplets).unwrap();
    let mut buf = Vec::new();
    write_matrix_market(&coo, &mut buf).unwrap();
    buf
}

/// Runs `plan` end to end with the correctness check; a plan that cannot
/// execute (bad tiling, scheduler wedge, wrong numerics) fails loudly.
fn assert_plan_runs(a: &Coo, k: usize, config: &SystemConfig, plan: &ExecutionPlan) {
    let dense = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r * 3 + c) % 7) as f32);
    run_spmm_checked(&mut SpadeSystem::new(config.clone()), a, &dense, plan);
}

/// Fuzz leg: every matrix that survives the MatrixMarket parser — however
/// mutated — gets a runnable plan from the model tier, the heuristic
/// tier, and (on a sampled subset; it simulates) the exhaustive tier.
/// Degenerate shapes (zero columns) may be rejected, but only with a
/// typed error, never a panic or an invalid plan.
#[test]
fn mutated_matrix_market_inputs_always_yield_runnable_plans() {
    let mut rng = Rng64::seed_from_u64(0x5AFE_AD51);
    let model = synthetic_model();
    let config = SystemConfig::scaled(4);
    let k = 16;
    let mut parsed = 0usize;
    let mut exhaustive_checked = 0usize;
    for _ in 0..30 {
        let doc = seed_doc(&mut rng);
        for _ in 0..8 {
            let mut m = doc.clone();
            for _ in 0..rng.gen_range(1..6usize) {
                let i = rng.gen_range(0..m.len());
                match rng.gen_range(0..3u32) {
                    0 => m[i] ^= 1 << rng.gen_range(0..8u32),
                    1 => m[i] = rng.next_u64() as u8,
                    _ => {
                        let b = m[i];
                        m.insert(i, b);
                    }
                }
            }
            let Ok(a) = read_matrix_market(Cursor::new(m)) else {
                continue;
            };
            // Byte mutations can inflate the header dimensions; bound the
            // simulated shapes so the corpus stays fast.
            if a.num_rows() == 0 || a.num_rows() > 20_000 || a.num_cols() > 20_000 {
                continue;
            }
            parsed += 1;

            match advise(&a, k, &config) {
                Ok(plan) => assert_plan_runs(&a, k, &config, &plan),
                Err(e) => assert!(a.num_cols() == 0, "heuristic rejected a sane matrix: {e}"),
            }

            match advise_tiered(&a, k, &config, Some(&model)) {
                Ok(advice) => {
                    assert!(
                        matches!(advice.source, AdviseSource::Model | AdviseSource::Heuristic),
                        "fast path must never claim the exhaustive tier"
                    );
                    assert_plan_runs(&a, k, &config, &advice.plan);
                }
                Err(e) => assert!(a.num_cols() == 0, "tiered rejected a sane matrix: {e}"),
            }

            if exhaustive_checked < 3 && a.num_cols() > 0 && a.nnz() > 0 {
                let w = Workload::from_matrix(format!("fuzz{parsed}"), a.clone(), k);
                let (plan, report) = find_opt(&config, &w, Primitive::Spmm, true);
                assert!(report.cycles > 0, "exhaustive tier returned an empty run");
                assert_plan_runs(&a, k, &config, &plan);
                exhaustive_checked += 1;
            }
        }
    }
    assert!(
        parsed >= 20,
        "mutation corpus too hostile: only {parsed} documents parsed"
    );
    assert_eq!(exhaustive_checked, 3, "exhaustive tier never sampled");
}

/// Suite leg: on every tiny benchmark the fast advise path (model tier
/// and the bare heuristic) returns a plan at least as fast as SPADE Base.
/// This is the no-regression floor of the three-tier policy: asking for
/// advice must never be worse than not asking.
#[test]
fn advised_plan_never_slower_than_base_on_tiny_suite() {
    let config = SystemConfig::scaled(8);
    let k = 32;
    for b in Benchmark::ALL {
        let a = b.generate(Scale::Tiny);
        let dense = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r * 3 + c) % 7) as f32);
        let base_plan = ExecutionPlan::spmm_base(&a).unwrap();
        let base = run_spmm_checked(
            &mut SpadeSystem::new(config.clone()),
            &a,
            &dense,
            &base_plan,
        );
        let advice = advise_tiered(&a, k, &config, None).unwrap();
        assert_eq!(advice.plan, advise(&a, k, &config).unwrap());
        let advised = run_spmm_checked(
            &mut SpadeSystem::new(config.clone()),
            &a,
            &dense,
            &advice.plan,
        );
        assert!(
            advised.report.cycles <= base.report.cycles,
            "{}: advised plan {:?} took {} cycles vs base {}",
            b.short_name(),
            advice.plan,
            advised.report.cycles,
            base.report.cycles
        );
    }
}
