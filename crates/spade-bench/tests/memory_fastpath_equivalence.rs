//! The memory-hierarchy fast path (line filters, translation reuse) is an
//! optimization of the slow always-translate path, not a model change:
//! for any workload, plan, cycle driver, fault schedule and worker count,
//! runs with the fast path enabled and forced off must produce
//! byte-identical reports, telemetry series and event traces.

use std::sync::Arc;

use spade_bench::machines;
use spade_bench::parallel::{Job, JobOutput, ParallelRunner};
use spade_bench::suite::Workload;
use spade_core::{Primitive, SystemConfig};
use spade_matrix::generators::{Benchmark, Scale};
use spade_sim::FaultConfig;

/// Serializes a job output's observability artifacts to comparable byte
/// strings (telemetry series JSON, Chrome trace JSON).
fn observable_bytes(o: &JobOutput) -> (String, String) {
    let telemetry = o
        .telemetry
        .as_ref()
        .map(|s| s.to_json().render())
        .unwrap_or_default();
    let trace = o
        .trace
        .as_ref()
        .map(|t| t.to_chrome_json())
        .unwrap_or_default();
    (telemetry, trace)
}

/// Builds quads of observed jobs — (event fast, event slow-mem, naive
/// fast, naive slow-mem) — for a fig9 subset on the given machine.
fn quad_jobs(cfg: &Arc<SystemConfig>) -> Vec<Job> {
    let mut jobs = Vec::new();
    for benchmark in [Benchmark::Myc, Benchmark::Kro] {
        let w = Arc::new(Workload::prepare(benchmark, Scale::Tiny, 32));
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            let base = Job::new(&w, cfg, primitive, machines::base_plan(&w.a))
                .with_telemetry(Some(128))
                .with_trace(true);
            jobs.push(base.clone());
            jobs.push(base.clone().with_slow_mem_path(true));
            jobs.push(base.clone().with_naive_loop(true));
            jobs.push(base.with_naive_loop(true).with_slow_mem_path(true));
        }
    }
    jobs
}

/// Asserts every quad matches on the report, the telemetry bytes and the
/// trace bytes — the first slot (event driver, fast path) is the anchor.
fn assert_quads_identical(jobs: &[Job], outputs: &[JobOutput]) {
    for (quad, job) in outputs.chunks_exact(4).zip(jobs.chunks_exact(4)) {
        let label = format!("{}/{:?}", job[0].workload.name, job[0].primitive);
        let anchor_bytes = observable_bytes(&quad[0]);
        assert!(
            !anchor_bytes.0.is_empty() && !anchor_bytes.1.is_empty(),
            "{label}: observability was requested but came back empty"
        );
        for (slot, out) in quad.iter().enumerate().skip(1) {
            let variant = match slot {
                1 => "event driver + slow memory path",
                2 => "naive driver + fast memory path",
                _ => "naive driver + slow memory path",
            };
            assert_eq!(
                quad[0].report, out.report,
                "{label}: report differs under {variant}"
            );
            assert!(
                anchor_bytes == observable_bytes(out),
                "{label}: telemetry or trace bytes differ under {variant}"
            );
        }
    }
}

#[test]
fn fast_and_slow_memory_paths_agree_across_drivers_and_threads() {
    let cfg = Arc::new(machines::spade_system(8));
    let jobs = quad_jobs(&cfg);
    let serial: Vec<JobOutput> = ParallelRunner::new(1)
        .run_outputs(&jobs)
        .into_iter()
        .map(|r| r.expect("job failed"))
        .collect();
    assert_quads_identical(&jobs, &serial);
    // Same check through the multi-worker engine, which must itself be
    // invisible: each slot byte-identical to the serial run.
    for threads in [2, 4] {
        let parallel: Vec<JobOutput> = ParallelRunner::new(threads)
            .run_outputs(&jobs)
            .into_iter()
            .map(|r| r.expect("job failed"))
            .collect();
        assert_quads_identical(&jobs, &parallel);
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(p.report, s.report, "slot {i} drifted across thread counts");
            assert_eq!(observable_bytes(p), observable_bytes(s));
        }
    }
}

#[test]
fn fast_and_slow_memory_paths_agree_under_fault_schedules() {
    // Fault plans veto the filters internally, so both variants take the
    // slow path — the point is that forcing it *externally* changes
    // nothing either, under both drivers, with faults actually firing.
    for seed in [11u64, 0xFEED] {
        let mut cfg = machines::spade_system(4);
        cfg.mem.faults = FaultConfig::stress(seed);
        let cfg = Arc::new(cfg);
        let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
        let mut jobs = Vec::new();
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            let base = Job::new(&w, &cfg, primitive, machines::base_plan(&w.a))
                .with_telemetry(Some(64))
                .with_trace(true);
            jobs.push(base.clone());
            jobs.push(base.clone().with_slow_mem_path(true));
            jobs.push(base.clone().with_naive_loop(true));
            jobs.push(base.with_naive_loop(true).with_slow_mem_path(true));
        }
        let outputs: Vec<JobOutput> = ParallelRunner::new(2)
            .run_outputs(&jobs)
            .into_iter()
            .map(|r| r.expect("faulted job failed"))
            .collect();
        assert!(
            outputs[0].report.mem.faults_injected > 0,
            "stress({seed}) plan injected nothing"
        );
        assert_quads_identical(&jobs, &outputs);
    }
}
