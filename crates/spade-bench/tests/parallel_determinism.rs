//! The parallel experiment engine must be invisible in the results: for
//! the same job list, any worker count returns bit-identical reports in
//! the same (job) order as the serial path.

use std::sync::Arc;

use spade_bench::machines;
use spade_bench::parallel::{Job, ParallelRunner};
use spade_bench::runner;
use spade_bench::suite::Workload;
use spade_core::{Primitive, RunReport, SystemConfig};
use spade_matrix::generators::{Benchmark, Scale};

/// A mixed job list: two graphs × both primitives × several plans, all
/// sharing workloads and the machine config.
fn job_list() -> Vec<Job> {
    let cfg = Arc::new(machines::spade_system(4));
    let mut jobs = Vec::new();
    for benchmark in [Benchmark::Myc, Benchmark::Kro] {
        let w = Arc::new(Workload::prepare(benchmark, Scale::Tiny, 32));
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            for plan in runner::opt_candidates(&w, true) {
                jobs.push(Job::new(&w, &cfg, primitive, plan));
            }
        }
    }
    jobs
}

#[test]
fn parallel_reports_are_bit_identical_to_serial() {
    let jobs = job_list();
    let serial: Vec<RunReport> = ParallelRunner::new(1).run(&jobs);
    for threads in [2, 4, 8] {
        let parallel = ParallelRunner::new(threads).run(&jobs);
        // RunReport equality covers every simulated metric (cycles, vOps,
        // cache/DRAM counters, bandwidth) — only the host wall clock is
        // excluded.
        assert_eq!(
            parallel, serial,
            "{threads}-thread run diverged from the serial reference"
        );
    }
}

#[test]
fn find_opt_is_deterministic_across_runs() {
    let cfg: SystemConfig = machines::spade_system(4);
    let w = Workload::prepare(Benchmark::Myc, Scale::Tiny, 32);
    let (plan_a, report_a) = runner::find_opt(&cfg, &w, Primitive::Spmm, true);
    let (plan_b, report_b) = runner::find_opt(&cfg, &w, Primitive::Spmm, true);
    assert_eq!(plan_a, plan_b);
    assert_eq!(report_a, report_b);
}

#[test]
fn duplicate_heavy_lists_still_return_per_slot_reports() {
    let cfg = Arc::new(machines::spade_system(4));
    let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
    let plan = machines::base_plan(&w.a);
    let job = Job::new(&w, &cfg, Primitive::Spmm, plan);
    let jobs = vec![job.clone(), job.clone(), job.clone(), job];
    let reports = ParallelRunner::new(4).run(&jobs);
    assert_eq!(reports.len(), 4);
    for r in &reports[1..] {
        assert_eq!(*r, reports[0]);
    }
}
