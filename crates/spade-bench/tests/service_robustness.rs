//! Robustness suite for the experiment daemon (`spade_bench::service`):
//! cold/warm byte-identity through the crash-safe cache, byzantine
//! clients (garbage, partial frames, oversized lines, dropped
//! connections), overload back-pressure, per-request deadlines, and
//! graceful shutdown with drain.
//!
//! Every test binds its own daemon on port 0 — the suites are
//! independent and parallel-safe.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

use spade_bench::service::{Service, ServiceClient, ServiceConfig, ServiceSummary};
use spade_sim::JsonValue;

/// Binds a daemon with `config`, serves it on a background thread, and
/// returns the address plus the join handle yielding the summary.
fn spawn_service(config: ServiceConfig) -> (SocketAddr, std::thread::JoinHandle<ServiceSummary>) {
    let svc = Service::bind("127.0.0.1:0", config).expect("bind");
    let addr = svc.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || svc.run().expect("service run"));
    (addr, handle)
}

fn test_config(cache_dir: Option<&Path>) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 2,
        max_connections: 16,
        read_timeout: Duration::from_millis(50),
        cache_dir: cache_dir.map(Path::to_path_buf),
        ..ServiceConfig::default()
    }
}

fn parse(response: &str) -> JsonValue {
    JsonValue::parse(response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn shutdown_and_join(
    addr: &SocketAddr,
    handle: std::thread::JoinHandle<ServiceSummary>,
) -> ServiceSummary {
    let mut c = ServiceClient::connect(addr).expect("connect for shutdown");
    let resp = parse(&c.request_line("{\"cmd\":\"shutdown\"}").expect("shutdown"));
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    handle.join().expect("service thread")
}

const RUN_MYC: &str = r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}"#;

#[test]
fn cold_then_warm_cache_hits_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("spade_svc_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let cold = client.request_line(RUN_MYC).expect("cold run");
    let warm = client.request_line(RUN_MYC).expect("warm run");
    let cold_doc = parse(&cold);
    let warm_doc = parse(&warm);
    assert_eq!(cold_doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        cold_doc.get("cached").and_then(JsonValue::as_bool),
        Some(false),
        "first request must simulate"
    );
    assert_eq!(
        warm_doc.get("cached").and_then(JsonValue::as_bool),
        Some(true),
        "second request must hit the cache"
    );
    // The headline property: the served result bytes are identical.
    assert_eq!(
        cold_doc.get("result").expect("result").render(),
        warm_doc.get("result").expect("result").render()
    );
    assert_eq!(cold_doc.get("key").unwrap(), warm_doc.get("key").unwrap());
    // No host-wall noise in the payload — that's what makes the bytes
    // reproducible across hosts and restarts.
    let report = cold_doc
        .get("result")
        .and_then(|r| r.get("report"))
        .expect("report");
    assert_eq!(
        report.get("host_wall_ns").and_then(JsonValue::as_f64),
        Some(0.0)
    );

    let summary = shutdown_and_join(&addr, handle);
    assert_eq!(summary.served_ok, 2);
    let cache = summary.cache.expect("cache stats");
    assert_eq!((cache.misses, cache.hits, cache.stores), (1, 1, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_entries_survive_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("spade_svc_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let first = parse(&client.request_line(RUN_MYC).expect("cold run"));
    assert_eq!(
        first.get("cached").and_then(JsonValue::as_bool),
        Some(false)
    );
    shutdown_and_join(&addr, handle);

    // A new daemon process-equivalent over the same directory: the very
    // first request is served from disk, byte-identical.
    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("reconnect");
    let revived = parse(&client.request_line(RUN_MYC).expect("warm run"));
    assert_eq!(
        revived.get("cached").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        revived.get("result").expect("result").render(),
        first.get("result").expect("result").render()
    );
    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn byzantine_clients_fail_their_requests_not_the_daemon() {
    let (addr, handle) = spawn_service(test_config(None));

    // Garbage on a connection fails that request; the same connection
    // keeps working afterwards.
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let garbage = parse(
        &client
            .request_line("\u{1}\u{2} not json at all")
            .expect("garbage"),
    );
    assert_eq!(garbage.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        garbage
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("bad_request")
    );
    let ping = parse(
        &client
            .request_line("{\"cmd\":\"ping\"}")
            .expect("ping after garbage"),
    );
    assert_eq!(ping.get("ok").and_then(JsonValue::as_bool), Some(true));

    // Valid JSON that is not a valid request: still just a bad_request.
    for frame in [
        "null",
        "[1,2,3]",
        "{\"no_cmd\":true}",
        "{\"cmd\":\"frobnicate\"}",
        "{\"cmd\":\"run\"}",
        "{\"cmd\":\"run\",\"benchmark\":\"nope\"}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"k\":17}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"pes\":3}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"pes\":1000000}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"rmatrix\":\"psychic\"}",
    ] {
        let resp = parse(&client.request_line(frame).expect("reply"));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("bad_request"),
            "frame {frame:?} should be rejected"
        );
    }

    // A client that sends half a frame and disappears costs nothing.
    {
        let mut half = TcpStream::connect(addr).expect("connect");
        half.write_all(b"{\"cmd\":\"ru").expect("partial write");
        // Dropped here: mid-frame EOF on the daemon side.
    }

    // An oversized line is answered with a structured error, then the
    // connection closes (framing is unrecoverable).
    {
        let mut big = ServiceClient::connect(&addr).expect("connect");
        let huge = format!(
            "{{\"cmd\":\"run\",\"pad\":\"{}\"}}",
            "x".repeat(2 * 1024 * 1024)
        );
        let resp = parse(&big.request_line(&huge).expect("oversize reply"));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("bad_request")
        );
        assert!(big.read_response().is_err(), "connection should be closed");
    }

    // After all of that, the daemon still serves real work.
    let run = parse(&client.request_line(RUN_MYC).expect("run after abuse"));
    assert_eq!(run.get("ok").and_then(JsonValue::as_bool), Some(true));

    let summary = shutdown_and_join(&addr, handle);
    assert!(
        summary.bad_frames >= 11,
        "bad frames: {}",
        summary.bad_frames
    );
    // Only the real run counts (ping/status are not work); the point is
    // that it went through untouched by the abuse around it.
    assert_eq!(summary.served_ok, 1, "garbage never blocks real requests");
}

#[test]
fn overload_answers_with_backpressure_not_buffering() {
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        // Fault injection: every job is held for 3 s before it runs, so
        // the worker is *provably* busy while the burst below arrives —
        // no dependence on simulation wall time.
        worker_delay: Some(Duration::from_secs(3)),
        ..test_config(None)
    };
    let (addr, handle) = spawn_service(config);

    // Occupy the single worker with one request and the single queue
    // slot with a second. Neither reply is awaited yet — each connection
    // holds at most one in-flight request.
    let slow = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect slow");
        c.request_line(r#"{"cmd":"search","benchmark":"myc","k":16,"pes":4,"no_cache":true}"#)
            .expect("slow search")
    });
    std::thread::sleep(Duration::from_millis(500));
    let queued = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect queued");
        c.request_line(r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"no_cache":true}"#)
            .expect("queued run")
    });
    std::thread::sleep(Duration::from_millis(500));

    // The burst: every extra request is answered *immediately* with a
    // structured overload reply, not buffered.
    for i in 0..4 {
        let mut c = ServiceClient::connect(&addr).expect("connect burst");
        let resp = parse(
            &c.request_line(&format!(
                "{{\"cmd\":\"run\",\"benchmark\":\"kro\",\"k\":16,\"pes\":4,\"no_cache\":true,\"id\":{i}}}"
            ))
            .expect("burst reply"),
        );
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("overloaded"),
            "burst request {i} got {}",
            resp.render()
        );
        assert!(
            resp.get("retry_after_ms")
                .and_then(JsonValue::as_u64)
                .is_some(),
            "overload replies carry a retry hint"
        );
    }

    // The admitted requests still complete normally.
    let slow = parse(&slow.join().expect("slow thread"));
    let queued = parse(&queued.join().expect("queued thread"));
    assert_eq!(slow.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(queued.get("ok").and_then(JsonValue::as_bool), Some(true));

    let summary = shutdown_and_join(&addr, handle);
    assert_eq!(summary.rejected_overload, 4);
    assert_eq!(summary.served_ok, 2);
}

#[test]
fn deadline_exceeded_is_a_structured_error() {
    let (addr, handle) = spawn_service(test_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let resp = parse(
        &client
            .request_line(r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"deadline_cycles":50}"#)
            .expect("deadline run"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("deadline_exceeded"),
        "got {}",
        resp.render()
    );
    // The same request with a workable deadline succeeds — the ceiling
    // is per-request, not sticky.
    let ok = parse(
        &client
            .request_line(
                r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"deadline_cycles":1000000}"#,
            )
            .expect("ok run"),
    );
    assert_eq!(ok.get("ok").and_then(JsonValue::as_bool), Some(true));
    let summary = shutdown_and_join(&addr, handle);
    assert_eq!((summary.served_ok, summary.served_err), (1, 1));
}

#[test]
fn status_and_ping_report_live_state() {
    let (addr, handle) = spawn_service(test_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let ping = parse(&client.request_line("{\"cmd\":\"ping\"}").expect("ping"));
    assert_eq!(ping.get("protocol").and_then(JsonValue::as_u64), Some(2));
    let status = parse(&client.request_line("{\"cmd\":\"status\"}").expect("status"));
    for field in [
        "uptime_ms",
        "queue_depth",
        "queue_capacity",
        "in_flight",
        "workers",
        "served_ok",
        "served_err",
        "rejected_overload",
        "bad_frames",
        "connections",
    ] {
        assert!(status.get(field).is_some(), "status missing {field}");
    }
    assert_eq!(
        status.get("shutting_down").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert!(status.get("cache").is_some_and(|c| *c == JsonValue::Null));
    shutdown_and_join(&addr, handle);
}

#[test]
fn shutdown_drains_and_new_requests_are_turned_away() {
    let (addr, handle) = spawn_service(test_config(None));
    // A connection opened before shutdown...
    let mut early = ServiceClient::connect(&addr).expect("connect early");
    let mut late = ServiceClient::connect(&addr).expect("connect late");
    let resp = parse(
        &early
            .request_line("{\"cmd\":\"shutdown\"}")
            .expect("shutdown"),
    );
    assert_eq!(
        resp.get("draining").and_then(JsonValue::as_bool),
        Some(true)
    );
    // Give every handler a read-timeout tick to observe the flag.
    std::thread::sleep(Duration::from_millis(250));
    // ...whose next request lands during the drain: answered with a
    // structured shutting_down error (or the connection is closed),
    // never silently dropped into a dead queue.
    match late.request_line("{\"cmd\":\"ping\"}") {
        Ok(reply) => {
            let doc = parse(&reply);
            assert_eq!(
                doc.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(JsonValue::as_str),
                Some("shutting_down")
            );
        }
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error during drain: {e}"
        ),
    }
    let summary = handle.join().expect("service thread");
    assert_eq!(summary.served_err, 0);
}

// ---------------------------------------------------------------------------
// Observability: metrics scrapes, the dataset query surface, wire traces,
// and the pure-observation guarantee
// ---------------------------------------------------------------------------

use std::sync::Arc;

use spade_bench::parallel::{Job, ParallelRunner};
use spade_bench::service::trace_document;
use spade_bench::suite::Workload;
use spade_core::{ExecutionPlan, Primitive, SystemConfig};
use spade_matrix::generators::{Benchmark, Scale};

const TRACE_MYC: &str =
    r#"{"cmd":"trace","benchmark":"myc","k":16,"pes":4,"scale":"tiny","window":64}"#;

#[test]
fn metrics_scrape_reflects_requests_and_cache_traffic() {
    let dir = std::env::temp_dir().join(format!("spade_svc_metrics_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let ping = parse(&client.request_line("{\"cmd\":\"ping\"}").expect("ping"));
    assert_eq!(ping.get("ok").and_then(JsonValue::as_bool), Some(true));
    for _ in 0..2 {
        let run = parse(&client.request_line(RUN_MYC).expect("run"));
        assert_eq!(run.get("ok").and_then(JsonValue::as_bool), Some(true));
    }

    let resp = parse(
        &client
            .request_line("{\"cmd\":\"metrics\"}")
            .expect("metrics"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(resp.get("protocol").and_then(JsonValue::as_u64), Some(2));
    let snap = spade_bench::metrics::MetricsSnapshot::from_json(
        resp.get("result").expect("metrics result"),
    )
    .expect("decode snapshot");

    let requests = |cmd: &str, outcome: &str| {
        snap.counter(
            "spade_requests_total",
            &[("cmd", cmd), ("outcome", outcome)],
        )
    };
    assert_eq!(requests("ping", "ok"), Some(1));
    assert_eq!(requests("run", "ok"), Some(2));
    assert_eq!(requests("run", "error"), Some(0));
    // One cold miss+store, one warm hit — the registry mirrors the cache.
    assert_eq!(snap.counter("spade_cache_misses_total", &[]), Some(1));
    assert_eq!(snap.counter("spade_cache_hits_total", &[]), Some(1));
    assert_eq!(snap.counter("spade_cache_stores_total", &[]), Some(1));
    assert_eq!(snap.counter("spade_deadline_kills_total", &[]), Some(0));
    // Exactly one job reached a worker (the warm request never queued),
    // so each latency histogram holds one observation.
    for name in [
        "spade_queue_wait_microseconds",
        "spade_exec_microseconds",
        "spade_sim_cycles",
    ] {
        let h = snap
            .find(name, &[])
            .unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(h.histogram_count(), Some(1), "{name}");
    }

    // Satellite: the drain summary carries the same snapshot shape, with
    // the metrics scrape itself now counted too.
    let summary = shutdown_and_join(&addr, handle);
    let m = &summary.metrics;
    assert_eq!(
        m.counter("spade_requests_total", &[("cmd", "run"), ("outcome", "ok")]),
        Some(2)
    );
    assert_eq!(
        m.counter(
            "spade_requests_total",
            &[("cmd", "metrics"), ("outcome", "ok")]
        ),
        Some(1)
    );
    assert_eq!(m.counter("spade_cache_hits_total", &[]), Some(1));
    assert!(
        summary.to_json().get("metrics").is_some(),
        "machine-readable drain summary must embed the metrics snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_query_reflects_exactly_the_cached_entries() {
    let dir = std::env::temp_dir().join(format!("spade_svc_query_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let mut keys = Vec::new();
    for req in [
        RUN_MYC,
        r#"{"cmd":"run","benchmark":"kro","k":16,"pes":4,"scale":"tiny"}"#,
        TRACE_MYC,
    ] {
        let doc = parse(&client.request_line(req).expect("seed request"));
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        keys.push(
            doc.get("key")
                .and_then(JsonValue::as_str)
                .expect("cached request carries its key")
                .to_string(),
        );
    }
    keys.sort();

    let query = |client: &mut ServiceClient, req: &str| {
        let doc = parse(&client.request_line(req).expect("query"));
        assert_eq!(
            doc.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "{req}"
        );
        doc.get("result").expect("query result").clone()
    };

    // The unfiltered catalog is exactly the entries the runs above wrote.
    let all = query(&mut client, r#"{"cmd":"query"}"#);
    assert_eq!(all.get("total").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(all.get("matched").and_then(JsonValue::as_u64), Some(3));
    let mut listed: Vec<String> = all
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("entries")
        .iter()
        .map(|e| {
            e.get("key")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string()
        })
        .collect();
    listed.sort();
    assert_eq!(listed, keys, "catalog must mirror the cache exactly");

    // Filters: by benchmark, by kind, and a filter that matches nothing.
    let myc = query(
        &mut client,
        r#"{"cmd":"query","benchmark":"myc","kind":"run"}"#,
    );
    assert_eq!(myc.get("matched").and_then(JsonValue::as_u64), Some(1));
    let entry = &myc.get("entries").and_then(JsonValue::as_array).unwrap()[0];
    assert_eq!(
        entry.get("benchmark").and_then(JsonValue::as_str),
        Some("MYC")
    );
    assert_eq!(
        entry.get("kernel").and_then(JsonValue::as_str),
        Some("spmm")
    );
    assert_eq!(entry.get("kind").and_then(JsonValue::as_str), Some("run"));
    assert!(entry.get("cycles").and_then(JsonValue::as_u64).unwrap() > 0);
    let traces = query(&mut client, r#"{"cmd":"query","kind":"trace"}"#);
    assert_eq!(traces.get("matched").and_then(JsonValue::as_u64), Some(1));
    let none = query(
        &mut client,
        r#"{"cmd":"query","benchmark":"kro","kind":"trace"}"#,
    );
    assert_eq!(none.get("matched").and_then(JsonValue::as_u64), Some(0));

    // Bad filter values are bad requests, like every other wire field.
    let bad = parse(
        &client
            .request_line(r#"{"cmd":"query","kind":"frobnicate"}"#)
            .expect("bad query"),
    );
    assert_eq!(bad.get("ok").and_then(JsonValue::as_bool), Some(false));

    shutdown_and_join(&addr, handle);

    // Delete the advisory index: a restarted daemon must rebuild the
    // catalog from the entry payloads themselves.
    std::fs::remove_file(dir.join("index.json")).expect("remove index");
    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("reconnect");
    let rebuilt = query(&mut client, r#"{"cmd":"query"}"#);
    let mut listed: Vec<String> = rebuilt
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("entries")
        .iter()
        .map(|e| {
            e.get("key")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string()
        })
        .collect();
    listed.sort();
    assert_eq!(listed, keys, "catalog must survive losing index.json");
    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_served_trace_is_byte_identical_to_a_local_trace() {
    let dir = std::env::temp_dir().join(format!("spade_svc_trace_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let cold = client.request_line(TRACE_MYC).expect("cold trace");
    let cold_doc = parse(&cold);
    assert_eq!(cold_doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        cold_doc.get("cached").and_then(JsonValue::as_bool),
        Some(false)
    );
    let result = cold_doc.get("result").expect("trace result");
    assert_eq!(result.get("window").and_then(JsonValue::as_u64), Some(64));

    // The envelope splices the Chrome JSON in verbatim; everything after
    // `"trace":` up to the two closing braces is the document itself.
    let idx = cold.find(",\"trace\":").expect("trace field in response");
    let wire_trace = &cold[idx + ",\"trace\":".len()..cold.len() - 2];

    // The same job executed locally, exactly as `spade-cli trace` builds
    // it (defaults mirrored from the wire parser, including the service's
    // default deadline).
    let workload = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 16));
    let plan = ExecutionPlan::spmm_base(&workload.a).expect("plan");
    let config = Arc::new(SystemConfig::scaled(4));
    let job = Job::new(&workload, &config, Primitive::Spmm, plan)
        .with_deadline_cycles(Some(4_000_000_000))
        .with_telemetry(Some(64))
        .with_trace(true);
    let mut outputs = ParallelRunner::new(1).run_outputs(std::slice::from_ref(&job));
    let output = outputs.pop().expect("one output").expect("local trace run");
    let (chrome, events) = trace_document(&output, config.num_pes).expect("local document");

    assert_eq!(
        result.get("events").and_then(JsonValue::as_u64),
        Some(events as u64)
    );
    assert!(
        wire_trace == chrome,
        "wire-served trace differs from the locally built document"
    );

    // A warm repeat is a cache hit with the same bytes.
    let warm = client.request_line(TRACE_MYC).expect("warm trace");
    let warm_doc = parse(&warm);
    assert_eq!(
        warm_doc.get("cached").and_then(JsonValue::as_bool),
        Some(true)
    );
    let warm_idx = warm
        .find(",\"trace\":")
        .expect("trace field in warm response");
    assert!(
        warm[warm_idx..warm.len() - 2].strip_prefix(",\"trace\":") == Some(&chrome[..]),
        "cache-served trace bytes drifted"
    );

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observability_never_changes_served_bytes() {
    // Two daemons over fresh caches, identical except that one has JSON
    // span logging enabled. Every reply — run, trace, query — must be
    // byte-identical: metrics and logs observe, they never participate.
    let base = std::env::temp_dir().join(format!("spade_svc_pure_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let requests = [
        RUN_MYC,
        RUN_MYC,
        TRACE_MYC,
        r#"{"cmd":"query","kind":"run"}"#,
    ];

    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for (tag, log_json) in [("plain", false), ("logged", true)] {
        let dir = base.join(tag);
        let config = ServiceConfig {
            log_json,
            ..test_config(Some(&dir))
        };
        let (addr, handle) = spawn_service(config);
        let mut client = ServiceClient::connect(&addr).expect("connect");
        let mut lines = Vec::new();
        for req in requests {
            lines.push(client.request_line(req).expect("request"));
        }
        shutdown_and_join(&addr, handle);
        transcripts.push(lines);
    }

    for (i, (plain, logged)) in transcripts[0].iter().zip(&transcripts[1]).enumerate() {
        assert!(
            plain == logged,
            "request {i} ({}) served different bytes with logging on",
            requests[i]
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
