//! Robustness suite for the experiment daemon (`spade_bench::service`):
//! cold/warm byte-identity through the crash-safe cache, byzantine
//! clients (garbage, partial frames, oversized lines, dropped
//! connections), overload back-pressure, per-request deadlines, and
//! graceful shutdown with drain.
//!
//! Every test binds its own daemon on port 0 — the suites are
//! independent and parallel-safe.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

use spade_bench::service::{Service, ServiceClient, ServiceConfig, ServiceSummary};
use spade_sim::JsonValue;

/// Binds a daemon with `config`, serves it on a background thread, and
/// returns the address plus the join handle yielding the summary.
fn spawn_service(config: ServiceConfig) -> (SocketAddr, std::thread::JoinHandle<ServiceSummary>) {
    let svc = Service::bind("127.0.0.1:0", config).expect("bind");
    let addr = svc.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || svc.run().expect("service run"));
    (addr, handle)
}

fn test_config(cache_dir: Option<&Path>) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 2,
        max_connections: 16,
        read_timeout: Duration::from_millis(50),
        cache_dir: cache_dir.map(Path::to_path_buf),
        ..ServiceConfig::default()
    }
}

fn parse(response: &str) -> JsonValue {
    JsonValue::parse(response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn shutdown_and_join(
    addr: &SocketAddr,
    handle: std::thread::JoinHandle<ServiceSummary>,
) -> ServiceSummary {
    let mut c = ServiceClient::connect(addr).expect("connect for shutdown");
    let resp = parse(&c.request_line("{\"cmd\":\"shutdown\"}").expect("shutdown"));
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    handle.join().expect("service thread")
}

const RUN_MYC: &str = r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}"#;

#[test]
fn cold_then_warm_cache_hits_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("spade_svc_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let cold = client.request_line(RUN_MYC).expect("cold run");
    let warm = client.request_line(RUN_MYC).expect("warm run");
    let cold_doc = parse(&cold);
    let warm_doc = parse(&warm);
    assert_eq!(cold_doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        cold_doc.get("cached").and_then(JsonValue::as_bool),
        Some(false),
        "first request must simulate"
    );
    assert_eq!(
        warm_doc.get("cached").and_then(JsonValue::as_bool),
        Some(true),
        "second request must hit the cache"
    );
    // The headline property: the served result bytes are identical.
    assert_eq!(
        cold_doc.get("result").expect("result").render(),
        warm_doc.get("result").expect("result").render()
    );
    assert_eq!(cold_doc.get("key").unwrap(), warm_doc.get("key").unwrap());
    // No host-wall noise in the payload — that's what makes the bytes
    // reproducible across hosts and restarts.
    let report = cold_doc
        .get("result")
        .and_then(|r| r.get("report"))
        .expect("report");
    assert_eq!(
        report.get("host_wall_ns").and_then(JsonValue::as_f64),
        Some(0.0)
    );

    let summary = shutdown_and_join(&addr, handle);
    assert_eq!(summary.served_ok, 2);
    let cache = summary.cache.expect("cache stats");
    assert_eq!((cache.misses, cache.hits, cache.stores), (1, 1, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_entries_survive_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("spade_svc_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let first = parse(&client.request_line(RUN_MYC).expect("cold run"));
    assert_eq!(
        first.get("cached").and_then(JsonValue::as_bool),
        Some(false)
    );
    shutdown_and_join(&addr, handle);

    // A new daemon process-equivalent over the same directory: the very
    // first request is served from disk, byte-identical.
    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("reconnect");
    let revived = parse(&client.request_line(RUN_MYC).expect("warm run"));
    assert_eq!(
        revived.get("cached").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        revived.get("result").expect("result").render(),
        first.get("result").expect("result").render()
    );
    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn byzantine_clients_fail_their_requests_not_the_daemon() {
    let (addr, handle) = spawn_service(test_config(None));

    // Garbage on a connection fails that request; the same connection
    // keeps working afterwards.
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let garbage = parse(
        &client
            .request_line("\u{1}\u{2} not json at all")
            .expect("garbage"),
    );
    assert_eq!(garbage.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        garbage
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("bad_request")
    );
    let ping = parse(
        &client
            .request_line("{\"cmd\":\"ping\"}")
            .expect("ping after garbage"),
    );
    assert_eq!(ping.get("ok").and_then(JsonValue::as_bool), Some(true));

    // Valid JSON that is not a valid request: still just a bad_request.
    for frame in [
        "null",
        "[1,2,3]",
        "{\"no_cmd\":true}",
        "{\"cmd\":\"frobnicate\"}",
        "{\"cmd\":\"run\"}",
        "{\"cmd\":\"run\",\"benchmark\":\"nope\"}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"k\":17}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"pes\":3}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"pes\":1000000}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"rmatrix\":\"psychic\"}",
    ] {
        let resp = parse(&client.request_line(frame).expect("reply"));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("bad_request"),
            "frame {frame:?} should be rejected"
        );
    }

    // A client that sends half a frame and disappears costs nothing.
    {
        let mut half = TcpStream::connect(addr).expect("connect");
        half.write_all(b"{\"cmd\":\"ru").expect("partial write");
        // Dropped here: mid-frame EOF on the daemon side.
    }

    // An oversized line is answered with a structured error, then the
    // connection closes (framing is unrecoverable).
    {
        let mut big = ServiceClient::connect(&addr).expect("connect");
        let huge = format!(
            "{{\"cmd\":\"run\",\"pad\":\"{}\"}}",
            "x".repeat(2 * 1024 * 1024)
        );
        let resp = parse(&big.request_line(&huge).expect("oversize reply"));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("bad_request")
        );
        assert!(big.read_response().is_err(), "connection should be closed");
    }

    // After all of that, the daemon still serves real work.
    let run = parse(&client.request_line(RUN_MYC).expect("run after abuse"));
    assert_eq!(run.get("ok").and_then(JsonValue::as_bool), Some(true));

    let summary = shutdown_and_join(&addr, handle);
    assert!(
        summary.bad_frames >= 11,
        "bad frames: {}",
        summary.bad_frames
    );
    // Only the real run counts (ping/status are not work); the point is
    // that it went through untouched by the abuse around it.
    assert_eq!(summary.served_ok, 1, "garbage never blocks real requests");
}

#[test]
fn overload_answers_with_backpressure_not_buffering() {
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        // Fault injection: every job is held for 3 s before it runs, so
        // the worker is *provably* busy while the burst below arrives —
        // no dependence on simulation wall time.
        worker_delay: Some(Duration::from_secs(3)),
        ..test_config(None)
    };
    let (addr, handle) = spawn_service(config);

    // Occupy the single worker with one request and the single queue
    // slot with a second. Neither reply is awaited yet — each connection
    // holds at most one in-flight request.
    let slow = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect slow");
        c.request_line(r#"{"cmd":"search","benchmark":"myc","k":16,"pes":4,"no_cache":true}"#)
            .expect("slow search")
    });
    std::thread::sleep(Duration::from_millis(500));
    let queued = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect queued");
        c.request_line(r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"no_cache":true}"#)
            .expect("queued run")
    });
    std::thread::sleep(Duration::from_millis(500));

    // The burst: every extra request is answered *immediately* with a
    // structured overload reply, not buffered.
    for i in 0..4 {
        let mut c = ServiceClient::connect(&addr).expect("connect burst");
        let resp = parse(
            &c.request_line(&format!(
                "{{\"cmd\":\"run\",\"benchmark\":\"kro\",\"k\":16,\"pes\":4,\"no_cache\":true,\"id\":{i}}}"
            ))
            .expect("burst reply"),
        );
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("overloaded"),
            "burst request {i} got {}",
            resp.render()
        );
        assert!(
            resp.get("retry_after_ms")
                .and_then(JsonValue::as_u64)
                .is_some(),
            "overload replies carry a retry hint"
        );
    }

    // The admitted requests still complete normally.
    let slow = parse(&slow.join().expect("slow thread"));
    let queued = parse(&queued.join().expect("queued thread"));
    assert_eq!(slow.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(queued.get("ok").and_then(JsonValue::as_bool), Some(true));

    let summary = shutdown_and_join(&addr, handle);
    assert_eq!(summary.rejected_overload, 4);
    assert_eq!(summary.served_ok, 2);
}

#[test]
fn deadline_exceeded_is_a_structured_error() {
    let (addr, handle) = spawn_service(test_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let resp = parse(
        &client
            .request_line(r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"deadline_cycles":50}"#)
            .expect("deadline run"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("deadline_exceeded"),
        "got {}",
        resp.render()
    );
    // The same request with a workable deadline succeeds — the ceiling
    // is per-request, not sticky.
    let ok = parse(
        &client
            .request_line(
                r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"deadline_cycles":1000000}"#,
            )
            .expect("ok run"),
    );
    assert_eq!(ok.get("ok").and_then(JsonValue::as_bool), Some(true));
    let summary = shutdown_and_join(&addr, handle);
    assert_eq!((summary.served_ok, summary.served_err), (1, 1));
}

#[test]
fn status_and_ping_report_live_state() {
    let (addr, handle) = spawn_service(test_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let ping = parse(&client.request_line("{\"cmd\":\"ping\"}").expect("ping"));
    assert_eq!(ping.get("protocol").and_then(JsonValue::as_u64), Some(4));
    let status = parse(&client.request_line("{\"cmd\":\"status\"}").expect("status"));
    for field in [
        "uptime_ms",
        "queue_depth",
        "queue_capacity",
        "in_flight",
        "workers",
        "served_ok",
        "served_err",
        "rejected_overload",
        "bad_frames",
        "connections",
    ] {
        assert!(status.get(field).is_some(), "status missing {field}");
    }
    assert_eq!(
        status.get("shutting_down").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert!(status.get("cache").is_some_and(|c| *c == JsonValue::Null));
    shutdown_and_join(&addr, handle);
}

#[test]
fn shutdown_drains_and_new_requests_are_turned_away() {
    let (addr, handle) = spawn_service(test_config(None));
    // A connection opened before shutdown...
    let mut early = ServiceClient::connect(&addr).expect("connect early");
    let mut late = ServiceClient::connect(&addr).expect("connect late");
    let resp = parse(
        &early
            .request_line("{\"cmd\":\"shutdown\"}")
            .expect("shutdown"),
    );
    assert_eq!(
        resp.get("draining").and_then(JsonValue::as_bool),
        Some(true)
    );
    // Give every handler a read-timeout tick to observe the flag.
    std::thread::sleep(Duration::from_millis(250));
    // ...whose next request lands during the drain: answered with a
    // structured shutting_down error (or the connection is closed),
    // never silently dropped into a dead queue.
    match late.request_line("{\"cmd\":\"ping\"}") {
        Ok(reply) => {
            let doc = parse(&reply);
            assert_eq!(
                doc.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(JsonValue::as_str),
                Some("shutting_down")
            );
        }
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error during drain: {e}"
        ),
    }
    let summary = handle.join().expect("service thread");
    assert_eq!(summary.served_err, 0);
}

// ---------------------------------------------------------------------------
// Observability: metrics scrapes, the dataset query surface, wire traces,
// and the pure-observation guarantee
// ---------------------------------------------------------------------------

use std::sync::Arc;

use spade_bench::parallel::{Job, ParallelRunner};
use spade_bench::service::trace_document;
use spade_bench::suite::Workload;
use spade_core::{ExecutionPlan, Primitive, SystemConfig};
use spade_matrix::generators::{Benchmark, Scale};

const TRACE_MYC: &str =
    r#"{"cmd":"trace","benchmark":"myc","k":16,"pes":4,"scale":"tiny","window":64}"#;

#[test]
fn metrics_scrape_reflects_requests_and_cache_traffic() {
    let dir = std::env::temp_dir().join(format!("spade_svc_metrics_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let ping = parse(&client.request_line("{\"cmd\":\"ping\"}").expect("ping"));
    assert_eq!(ping.get("ok").and_then(JsonValue::as_bool), Some(true));
    for _ in 0..2 {
        let run = parse(&client.request_line(RUN_MYC).expect("run"));
        assert_eq!(run.get("ok").and_then(JsonValue::as_bool), Some(true));
    }

    let resp = parse(
        &client
            .request_line("{\"cmd\":\"metrics\"}")
            .expect("metrics"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(resp.get("protocol").and_then(JsonValue::as_u64), Some(4));
    let snap = spade_bench::metrics::MetricsSnapshot::from_json(
        resp.get("result").expect("metrics result"),
    )
    .expect("decode snapshot");

    let requests = |cmd: &str, outcome: &str| {
        snap.counter(
            "spade_requests_total",
            &[("cmd", cmd), ("outcome", outcome)],
        )
    };
    assert_eq!(requests("ping", "ok"), Some(1));
    assert_eq!(requests("run", "ok"), Some(2));
    assert_eq!(requests("run", "error"), Some(0));
    // One cold miss+store, one warm hit — the registry mirrors the cache.
    assert_eq!(snap.counter("spade_cache_misses_total", &[]), Some(1));
    assert_eq!(snap.counter("spade_cache_hits_total", &[]), Some(1));
    assert_eq!(snap.counter("spade_cache_stores_total", &[]), Some(1));
    assert_eq!(snap.counter("spade_deadline_kills_total", &[]), Some(0));
    // Exactly one job reached a worker (the warm request never queued),
    // so each latency histogram holds one observation.
    for name in [
        "spade_queue_wait_microseconds",
        "spade_exec_microseconds",
        "spade_sim_cycles",
    ] {
        let h = snap
            .find(name, &[])
            .unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(h.histogram_count(), Some(1), "{name}");
    }

    // Satellite: the drain summary carries the same snapshot shape, with
    // the metrics scrape itself now counted too.
    let summary = shutdown_and_join(&addr, handle);
    let m = &summary.metrics;
    assert_eq!(
        m.counter("spade_requests_total", &[("cmd", "run"), ("outcome", "ok")]),
        Some(2)
    );
    assert_eq!(
        m.counter(
            "spade_requests_total",
            &[("cmd", "metrics"), ("outcome", "ok")]
        ),
        Some(1)
    );
    assert_eq!(m.counter("spade_cache_hits_total", &[]), Some(1));
    assert!(
        summary.to_json().get("metrics").is_some(),
        "machine-readable drain summary must embed the metrics snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_query_reflects_exactly_the_cached_entries() {
    let dir = std::env::temp_dir().join(format!("spade_svc_query_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let mut keys = Vec::new();
    for req in [
        RUN_MYC,
        r#"{"cmd":"run","benchmark":"kro","k":16,"pes":4,"scale":"tiny"}"#,
        TRACE_MYC,
    ] {
        let doc = parse(&client.request_line(req).expect("seed request"));
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        keys.push(
            doc.get("key")
                .and_then(JsonValue::as_str)
                .expect("cached request carries its key")
                .to_string(),
        );
    }
    keys.sort();

    let query = |client: &mut ServiceClient, req: &str| {
        let doc = parse(&client.request_line(req).expect("query"));
        assert_eq!(
            doc.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "{req}"
        );
        doc.get("result").expect("query result").clone()
    };

    // The unfiltered catalog is exactly the entries the runs above wrote.
    let all = query(&mut client, r#"{"cmd":"query"}"#);
    assert_eq!(all.get("total").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(all.get("matched").and_then(JsonValue::as_u64), Some(3));
    let mut listed: Vec<String> = all
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("entries")
        .iter()
        .map(|e| {
            e.get("key")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string()
        })
        .collect();
    listed.sort();
    assert_eq!(listed, keys, "catalog must mirror the cache exactly");

    // Filters: by benchmark, by kind, and a filter that matches nothing.
    let myc = query(
        &mut client,
        r#"{"cmd":"query","benchmark":"myc","kind":"run"}"#,
    );
    assert_eq!(myc.get("matched").and_then(JsonValue::as_u64), Some(1));
    let entry = &myc.get("entries").and_then(JsonValue::as_array).unwrap()[0];
    assert_eq!(
        entry.get("benchmark").and_then(JsonValue::as_str),
        Some("MYC")
    );
    assert_eq!(
        entry.get("kernel").and_then(JsonValue::as_str),
        Some("spmm")
    );
    assert_eq!(entry.get("kind").and_then(JsonValue::as_str), Some("run"));
    assert!(entry.get("cycles").and_then(JsonValue::as_u64).unwrap() > 0);
    let traces = query(&mut client, r#"{"cmd":"query","kind":"trace"}"#);
    assert_eq!(traces.get("matched").and_then(JsonValue::as_u64), Some(1));
    let none = query(
        &mut client,
        r#"{"cmd":"query","benchmark":"kro","kind":"trace"}"#,
    );
    assert_eq!(none.get("matched").and_then(JsonValue::as_u64), Some(0));

    // Bad filter values are bad requests, like every other wire field.
    let bad = parse(
        &client
            .request_line(r#"{"cmd":"query","kind":"frobnicate"}"#)
            .expect("bad query"),
    );
    assert_eq!(bad.get("ok").and_then(JsonValue::as_bool), Some(false));

    shutdown_and_join(&addr, handle);

    // Delete the advisory index: a restarted daemon must rebuild the
    // catalog from the entry payloads themselves.
    std::fs::remove_file(dir.join("index.json")).expect("remove index");
    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("reconnect");
    let rebuilt = query(&mut client, r#"{"cmd":"query"}"#);
    let mut listed: Vec<String> = rebuilt
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("entries")
        .iter()
        .map(|e| {
            e.get("key")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string()
        })
        .collect();
    listed.sort();
    assert_eq!(listed, keys, "catalog must survive losing index.json");
    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_served_trace_is_byte_identical_to_a_local_trace() {
    let dir = std::env::temp_dir().join(format!("spade_svc_trace_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let cold = client.request_line(TRACE_MYC).expect("cold trace");
    let cold_doc = parse(&cold);
    assert_eq!(cold_doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        cold_doc.get("cached").and_then(JsonValue::as_bool),
        Some(false)
    );
    let result = cold_doc.get("result").expect("trace result");
    assert_eq!(result.get("window").and_then(JsonValue::as_u64), Some(64));

    // The envelope splices the Chrome JSON in verbatim; everything after
    // `"trace":` up to the two closing braces is the document itself.
    let idx = cold.find(",\"trace\":").expect("trace field in response");
    let wire_trace = &cold[idx + ",\"trace\":".len()..cold.len() - 2];

    // The same job executed locally, exactly as `spade-cli trace` builds
    // it (defaults mirrored from the wire parser, including the service's
    // default deadline).
    let workload = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 16));
    let plan = ExecutionPlan::spmm_base(&workload.a).expect("plan");
    let config = Arc::new(SystemConfig::scaled(4));
    let job = Job::new(&workload, &config, Primitive::Spmm, plan)
        .with_deadline_cycles(Some(4_000_000_000))
        .with_telemetry(Some(64))
        .with_trace(true);
    let mut outputs = ParallelRunner::new(1).run_outputs(std::slice::from_ref(&job));
    let output = outputs.pop().expect("one output").expect("local trace run");
    let (chrome, events) = trace_document(&output, config.num_pes).expect("local document");

    assert_eq!(
        result.get("events").and_then(JsonValue::as_u64),
        Some(events as u64)
    );
    assert!(
        wire_trace == chrome,
        "wire-served trace differs from the locally built document"
    );

    // A warm repeat is a cache hit with the same bytes.
    let warm = client.request_line(TRACE_MYC).expect("warm trace");
    let warm_doc = parse(&warm);
    assert_eq!(
        warm_doc.get("cached").and_then(JsonValue::as_bool),
        Some(true)
    );
    let warm_idx = warm
        .find(",\"trace\":")
        .expect("trace field in warm response");
    assert!(
        warm[warm_idx..warm.len() - 2].strip_prefix(",\"trace\":") == Some(&chrome[..]),
        "cache-served trace bytes drifted"
    );

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn observability_never_changes_served_bytes() {
    // Two daemons over fresh caches, identical except that one has JSON
    // span logging enabled. Every reply — run, trace, query — must be
    // byte-identical: metrics and logs observe, they never participate.
    let base = std::env::temp_dir().join(format!("spade_svc_pure_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let requests = [
        RUN_MYC,
        RUN_MYC,
        TRACE_MYC,
        r#"{"cmd":"query","kind":"run"}"#,
    ];

    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for (tag, log_json) in [("plain", false), ("logged", true)] {
        let dir = base.join(tag);
        let config = ServiceConfig {
            log_json,
            ..test_config(Some(&dir))
        };
        let (addr, handle) = spawn_service(config);
        let mut client = ServiceClient::connect(&addr).expect("connect");
        let mut lines = Vec::new();
        for req in requests {
            lines.push(client.request_line(req).expect("request"));
        }
        shutdown_and_join(&addr, handle);
        transcripts.push(lines);
    }

    for (i, (plain, logged)) in transcripts[0].iter().zip(&transcripts[1]).enumerate() {
        assert!(
            plain == logged,
            "request {i} ({}) served different bytes with logging on",
            requests[i]
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

// ---------------------------------------------------------------------------
// Protocol v3: batch sweeps, server-side aggregation, and the bugfix
// sweep (index freshness, load-scaled back-pressure, limit: 0)
// ---------------------------------------------------------------------------

use spade_bench::service::{scaled_retry_after_ms, MAX_RETRY_AFTER_MS};

/// The raw bytes of the first `"result":` object at or after `from` —
/// brace-matched and string-aware, so byte-identity assertions compare
/// the spliced payload itself, not a parse/re-render of it.
fn raw_result_slice(raw: &str, from: usize) -> &str {
    let rel = raw[from..].find("\"result\":").expect("result field") + "\"result\":".len();
    let start = from + rel;
    let bytes = raw.as_bytes();
    assert_eq!(bytes[start], b'{', "result payload must be an object");
    let (mut depth, mut in_str, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes[start..].iter().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return &raw[start..=start + i];
                }
            }
            _ => {}
        }
    }
    panic!("unterminated result object in {raw:?}");
}

fn jobs_of(doc: &JsonValue) -> Vec<JsonValue> {
    doc.get("result")
        .and_then(|r| r.get("jobs"))
        .and_then(JsonValue::as_array)
        .expect("batch jobs array")
        .to_vec()
}

fn batch_count(doc: &JsonValue, field: &str) -> u64 {
    doc.get("result")
        .and_then(|r| r.get(field))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("batch count {field} in {}", doc.render()))
}

/// Batch tests that expect every job admitted need headroom beyond the
/// deliberately tiny default queue: phase-1 admission never waits, so a
/// queue shallower than the batch races the workers' dequeue timing.
fn batch_config(cache_dir: Option<&Path>) -> ServiceConfig {
    ServiceConfig {
        queue_capacity: 8,
        ..test_config(cache_dir)
    }
}

const BATCH_3: &str = concat!(
    r#"{"cmd":"batch","scale":"tiny","jobs":["#,
    r#"{"benchmark":"myc","k":16,"pes":4},"#,
    r#"{"benchmark":"kro","k":16,"pes":4},"#,
    r#"{"benchmark":"myc","k":16,"pes":8}]}"#
);

const SOLO_3: [&str; 3] = [
    r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}"#,
    r#"{"cmd":"run","benchmark":"kro","k":16,"pes":4,"scale":"tiny"}"#,
    r#"{"cmd":"run","benchmark":"myc","k":16,"pes":8,"scale":"tiny"}"#,
];

#[test]
fn batch_jobs_are_byte_identical_to_individual_requests() {
    // Two fresh daemons over separate caches: one serves the jobs
    // individually, the other as a single batch. The per-job payload
    // bytes must match — cold (simulated) and warm (cache-served).
    let solo_dir = std::env::temp_dir().join(format!("spade_svc_b_solo_{}", std::process::id()));
    let batch_dir = std::env::temp_dir().join(format!("spade_svc_b_batch_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&batch_dir);

    let (addr, handle) = spawn_service(test_config(Some(&solo_dir)));
    let mut client = ServiceClient::connect(&addr).expect("connect solo");
    let mut solo_payloads = Vec::new();
    for req in SOLO_3 {
        let raw = client.request_line(req).expect("solo run");
        let doc = parse(&raw);
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        solo_payloads.push(raw_result_slice(&raw, 0).to_string());
    }
    shutdown_and_join(&addr, handle);

    let (addr, handle) = spawn_service(batch_config(Some(&batch_dir)));
    let mut client = ServiceClient::connect(&addr).expect("connect batch");
    let cold = client.request_line(BATCH_3).expect("cold batch");
    let cold_doc = parse(&cold);
    assert_eq!(cold_doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(batch_count(&cold_doc, "total"), 3);
    assert_eq!(batch_count(&cold_doc, "succeeded"), 3);
    assert_eq!(batch_count(&cold_doc, "cached"), 0);
    assert_eq!(batch_count(&cold_doc, "failed"), 0);
    assert_eq!(batch_count(&cold_doc, "rejected"), 0);
    for (i, job) in jobs_of(&cold_doc).iter().enumerate() {
        assert_eq!(job.get("index").and_then(JsonValue::as_u64), Some(i as u64));
        assert_eq!(job.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(job.get("cached").and_then(JsonValue::as_bool), Some(false));
        assert!(job.get("key").and_then(JsonValue::as_str).is_some());
    }
    // The headline acceptance property: each batch slot splices exactly
    // the bytes the standalone request served.
    for (i, solo) in solo_payloads.iter().enumerate() {
        let at = cold
            .find(&format!("{{\"index\":{i},"))
            .expect("job slot marker");
        assert!(
            raw_result_slice(&cold, at) == solo,
            "cold batch job {i} payload differs from the standalone reply"
        );
    }

    // Warm repeat: every slot is a cache hit with the same bytes.
    let warm = client.request_line(BATCH_3).expect("warm batch");
    let warm_doc = parse(&warm);
    assert_eq!(batch_count(&warm_doc, "succeeded"), 3);
    assert_eq!(batch_count(&warm_doc, "cached"), 3);
    for (i, job) in jobs_of(&warm_doc).iter().enumerate() {
        assert_eq!(job.get("cached").and_then(JsonValue::as_bool), Some(true));
        let at = warm
            .find(&format!("{{\"index\":{i},"))
            .expect("warm job slot");
        assert!(
            raw_result_slice(&warm, at) == solo_payloads[i],
            "warm batch job {i} payload drifted"
        );
    }

    // And the cross-check: standalone requests on the batch daemon are
    // warm hits serving the very same bytes.
    for (req, solo) in SOLO_3.iter().zip(&solo_payloads) {
        let raw = client.request_line(req).expect("solo on batch daemon");
        let doc = parse(&raw);
        assert_eq!(doc.get("cached").and_then(JsonValue::as_bool), Some(true));
        assert!(raw_result_slice(&raw, 0) == solo.as_str());
    }

    let summary = shutdown_and_join(&addr, handle);
    // Per-job work units: 3 cold + 3 warm batch + 3 warm standalone.
    assert_eq!(summary.served_ok, 9);
    let batch_jobs = |outcome: &str| {
        summary
            .metrics
            .counter("spade_batch_jobs_total", &[("outcome", outcome)])
    };
    assert_eq!(batch_jobs("ok"), Some(3));
    assert_eq!(batch_jobs("cached"), Some(3));
    assert_eq!(batch_jobs("rejected"), Some(0));
    assert_eq!(batch_jobs("error"), Some(0));
    assert_eq!(
        summary.metrics.counter(
            "spade_requests_total",
            &[("cmd", "batch"), ("outcome", "ok")]
        ),
        Some(2)
    );
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&batch_dir);
}

#[test]
fn batch_sweep_expands_the_cross_product_in_order() {
    let (addr, handle) = spawn_service(batch_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let resp = parse(
        &client
            .request_line(
                r#"{"cmd":"batch","scale":"tiny","sweep":{"benchmarks":["myc","kro"],"k":[16],"pes":[4,8]}}"#,
            )
            .expect("sweep batch"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(batch_count(&resp, "total"), 4);
    assert_eq!(batch_count(&resp, "succeeded"), 4);
    // benchmarks × k × pes, benchmark-major: the reply order is a
    // deterministic function of the request.
    let expect = [("myc", 4), ("myc", 8), ("kro", 4), ("kro", 8)];
    for (i, job) in jobs_of(&resp).iter().enumerate() {
        let result = job.get("result").expect("job result");
        let bench = result
            .get("benchmark")
            .and_then(JsonValue::as_str)
            .expect("benchmark");
        assert!(
            bench.eq_ignore_ascii_case(expect[i].0),
            "job {i}: {bench} != {}",
            expect[i].0
        );
        assert_eq!(
            result.get("pes").and_then(JsonValue::as_u64),
            Some(expect[i].1),
            "job {i}"
        );
    }
    let summary = shutdown_and_join(&addr, handle);
    assert_eq!(summary.served_ok, 4);
}

#[test]
fn batch_structural_errors_reject_while_bad_jobs_poison_only_their_slot() {
    let (addr, handle) = spawn_service(batch_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    // Structural problems reject the whole request as bad_request.
    for frame in [
        r#"{"cmd":"batch"}"#,
        r#"{"cmd":"batch","jobs":[{"benchmark":"myc"}],"sweep":{"benchmarks":["myc"]}}"#,
        r#"{"cmd":"batch","jobs":[]}"#,
        r#"{"cmd":"batch","jobs":"myc"}"#,
        r#"{"cmd":"batch","sweep":{"benchmarks":[]}}"#,
        r#"{"cmd":"batch","sweep":{"k":[16]}}"#,
    ] {
        let resp = parse(&client.request_line(frame).expect("reply"));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("bad_request"),
            "frame {frame:?} got {}",
            resp.render()
        );
    }
    // A malformed job spec poisons exactly its own slot.
    let resp = parse(
        &client
            .request_line(concat!(
                r#"{"cmd":"batch","scale":"tiny","jobs":["#,
                r#"{"benchmark":"myc","k":16,"pes":4},"#,
                r#"{"benchmark":"nope"},"#,
                r#"{"benchmark":"kro","k":16,"pes":4}]}"#
            ))
            .expect("poisoned batch"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(batch_count(&resp, "succeeded"), 2);
    assert_eq!(batch_count(&resp, "failed"), 1);
    let jobs = jobs_of(&resp);
    assert_eq!(jobs[0].get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(jobs[2].get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        jobs[1]
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("bad_request")
    );
    let summary = shutdown_and_join(&addr, handle);
    assert_eq!((summary.served_ok, summary.served_err), (2, 0));
}

#[test]
fn batch_deadline_poisoned_job_fails_alone() {
    let (addr, handle) = spawn_service(batch_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let resp = parse(
        &client
            .request_line(concat!(
                r#"{"cmd":"batch","scale":"tiny","jobs":["#,
                r#"{"benchmark":"myc","k":16,"pes":4},"#,
                r#"{"benchmark":"myc","k":16,"pes":4,"deadline_cycles":50},"#,
                r#"{"benchmark":"kro","k":16,"pes":4}]}"#
            ))
            .expect("batch with poisoned middle job"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(batch_count(&resp, "succeeded"), 2);
    assert_eq!(batch_count(&resp, "failed"), 1);
    let jobs = jobs_of(&resp);
    assert_eq!(jobs[0].get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(jobs[2].get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        jobs[1]
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("deadline_exceeded"),
        "got {}",
        jobs[1].render()
    );
    let summary = shutdown_and_join(&addr, handle);
    assert_eq!((summary.served_ok, summary.served_err), (2, 1));
    assert_eq!(
        summary
            .metrics
            .counter("spade_batch_jobs_total", &[("outcome", "error")]),
        Some(1)
    );
    assert_eq!(
        summary.metrics.counter("spade_deadline_kills_total", &[]),
        Some(1)
    );
}

#[test]
fn mid_batch_overload_admits_what_fits() {
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        worker_delay: Some(Duration::from_secs(3)),
        ..test_config(None)
    };
    let base_retry = config.retry_after_ms;
    let (addr, handle) = spawn_service(config);

    // Occupy the single worker; the batch below then fills the single
    // queue slot with its first job and gets per-job rejections for the
    // rest — admission is per job, never all-or-nothing.
    let slow = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect slow");
        c.request_line(r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"no_cache":true}"#)
            .expect("slow run")
    });
    std::thread::sleep(Duration::from_millis(600));

    let mut client = ServiceClient::connect(&addr).expect("connect batch");
    let resp = parse(
        &client
            .request_line(concat!(
                r#"{"cmd":"batch","scale":"tiny","no_cache":true,"jobs":["#,
                r#"{"benchmark":"kro","k":16,"pes":4},"#,
                r#"{"benchmark":"myc","k":16,"pes":8},"#,
                r#"{"benchmark":"kro","k":16,"pes":8}]}"#
            ))
            .expect("overloaded batch"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(batch_count(&resp, "total"), 3);
    assert_eq!(batch_count(&resp, "succeeded"), 1);
    assert_eq!(batch_count(&resp, "rejected"), 2);
    assert_eq!(batch_count(&resp, "failed"), 0);
    let jobs = jobs_of(&resp);
    assert_eq!(jobs[0].get("ok").and_then(JsonValue::as_bool), Some(true));
    for (i, job) in jobs.iter().enumerate().skip(1) {
        assert_eq!(
            job.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("overloaded"),
            "job {i} got {}",
            job.render()
        );
        // The satellite fix: the retry hint is scaled from live load,
        // not the static base — at full occupancy it is strictly larger.
        let hint = job
            .get("retry_after_ms")
            .and_then(JsonValue::as_u64)
            .expect("rejected slots carry a retry hint");
        assert!(
            hint >= 5 * base_retry,
            "hint {hint} not scaled up from base {base_retry} at full occupancy"
        );
        assert!(hint <= MAX_RETRY_AFTER_MS);
    }

    let slow = parse(&slow.join().expect("slow thread"));
    assert_eq!(slow.get("ok").and_then(JsonValue::as_bool), Some(true));
    let summary = shutdown_and_join(&addr, handle);
    assert_eq!(summary.rejected_overload, 2);
    assert_eq!(summary.served_ok, 2);
}

#[test]
fn retry_hint_scales_monotonically_with_load() {
    let base = 100;
    // Idle floor: an empty queue and no recorded waits keep the base.
    assert_eq!(scaled_retry_after_ms(base, 0, 8, 0), base);
    // Monotone in occupancy, up to 5x base at a full queue.
    let mut last = 0;
    for depth in 0..=8 {
        let hint = scaled_retry_after_ms(base, depth, 8, 0);
        assert!(hint >= last, "hint regressed at depth {depth}");
        last = hint;
    }
    assert_eq!(scaled_retry_after_ms(base, 8, 8, 0), 5 * base);
    // Depth beyond capacity clamps instead of exploding.
    assert_eq!(scaled_retry_after_ms(base, 1000, 8, 0), 5 * base);
    // Monotone in the observed mean queue wait (microseconds → ms).
    assert_eq!(
        scaled_retry_after_ms(base, 4, 8, 250_000),
        scaled_retry_after_ms(base, 4, 8, 0) + 250
    );
    // And capped: a pathological backlog never asks for more than the
    // ceiling.
    assert_eq!(
        scaled_retry_after_ms(base, 8, 8, u64::MAX),
        MAX_RETRY_AFTER_MS
    );
}

#[test]
fn group_by_aggregates_match_a_client_side_fold() {
    let dir = std::env::temp_dir().join(format!("spade_svc_agg_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    for req in SOLO_3 {
        let doc = parse(&client.request_line(req).expect("seed run"));
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    }
    // A fourth run so the kro group also has two members.
    let doc = parse(
        &client
            .request_line(r#"{"cmd":"run","benchmark":"kro","k":16,"pes":8,"scale":"tiny"}"#)
            .expect("seed run"),
    );
    assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));

    // The reference: a client-side fold over the plain query rows.
    let rows = parse(&client.request_line(r#"{"cmd":"query"}"#).expect("query"));
    let rows = rows
        .get("result")
        .and_then(|r| r.get("entries"))
        .and_then(JsonValue::as_array)
        .expect("entries")
        .to_vec();
    assert_eq!(rows.len(), 4);
    let mut fold: std::collections::BTreeMap<String, Vec<&JsonValue>> =
        std::collections::BTreeMap::new();
    for row in &rows {
        let bench = row
            .get("benchmark")
            .and_then(JsonValue::as_str)
            .expect("benchmark")
            .to_string();
        fold.entry(bench).or_default().push(row);
    }

    let agg = parse(
        &client
            .request_line(r#"{"cmd":"query","group_by":"benchmark"}"#)
            .expect("agg"),
    );
    assert_eq!(agg.get("ok").and_then(JsonValue::as_bool), Some(true));
    let result = agg.get("result").expect("agg result");
    assert_eq!(
        result.get("group_by").and_then(JsonValue::as_str),
        Some("benchmark")
    );
    assert_eq!(
        result.get("groups_matched").and_then(JsonValue::as_u64),
        Some(fold.len() as u64)
    );
    let groups = result
        .get("groups")
        .and_then(JsonValue::as_array)
        .expect("groups");
    assert_eq!(groups.len(), fold.len());
    for group in groups {
        let label = group
            .get("group")
            .and_then(JsonValue::as_str)
            .expect("label");
        let members = &fold[label];
        let cycles: Vec<u64> = members
            .iter()
            .map(|m| m.get("cycles").and_then(JsonValue::as_u64).unwrap())
            .collect();
        assert_eq!(
            group.get("count").and_then(JsonValue::as_u64),
            Some(cycles.len() as u64)
        );
        assert_eq!(
            group.get("min_cycles").and_then(JsonValue::as_u64),
            cycles.iter().min().copied()
        );
        assert_eq!(
            group.get("max_cycles").and_then(JsonValue::as_u64),
            cycles.iter().max().copied()
        );
        let mean = cycles.iter().sum::<u64>() as f64 / cycles.len() as f64;
        assert_eq!(
            group.get("mean_cycles").and_then(JsonValue::as_f64),
            Some(mean)
        );
        // Best: fewest cycles, key as tie-break — identical to the fold.
        let best = members
            .iter()
            .min_by_key(|m| {
                (
                    m.get("cycles").and_then(JsonValue::as_u64).unwrap(),
                    m.get("key")
                        .and_then(JsonValue::as_str)
                        .unwrap()
                        .to_string(),
                )
            })
            .unwrap();
        assert_eq!(
            group.get("best").expect("best").render(),
            best.render(),
            "best entry for {label}"
        );
    }

    // `matrix` is an accepted alias, pes grouping has two labels, and an
    // unknown key is a bad request.
    let alias = parse(
        &client
            .request_line(r#"{"cmd":"query","group_by":"matrix"}"#)
            .expect("alias agg"),
    );
    assert_eq!(
        alias
            .get("result")
            .and_then(|r| r.get("group_by"))
            .and_then(JsonValue::as_str),
        Some("benchmark")
    );
    let by_pes = parse(
        &client
            .request_line(r#"{"cmd":"query","group_by":"pes"}"#)
            .expect("pes agg"),
    );
    assert_eq!(
        by_pes
            .get("result")
            .and_then(|r| r.get("groups_matched"))
            .and_then(JsonValue::as_u64),
        Some(2)
    );
    let bad = parse(
        &client
            .request_line(r#"{"cmd":"query","group_by":"plan"}"#)
            .expect("bad agg"),
    );
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("bad_request")
    );

    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_limit_zero_is_rejected_not_silently_empty() {
    let dir = std::env::temp_dir().join(format!("spade_svc_limit0_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let resp = parse(
        &client
            .request_line(r#"{"cmd":"query","limit":0}"#)
            .expect("limit 0"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("bad_request")
    );
    assert!(
        resp.get("error")
            .and_then(|e| e.get("message"))
            .and_then(JsonValue::as_str)
            .is_some_and(|m| m.contains("limit")),
        "message should name the offending field: {}",
        resp.render()
    );
    // An explicit positive limit still works.
    let ok = parse(
        &client
            .request_line(r#"{"cmd":"query","limit":5}"#)
            .expect("limit 5"),
    );
    assert_eq!(ok.get("ok").and_then(JsonValue::as_bool), Some(true));
    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn index_flushes_during_normal_operation_not_only_at_drain() {
    let dir = std::env::temp_dir().join(format!("spade_svc_flush_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let mut keys = Vec::new();
    for req in &SOLO_3[..2] {
        let doc = parse(&client.request_line(req).expect("run"));
        keys.push(
            doc.get("key")
                .and_then(JsonValue::as_str)
                .expect("key")
                .to_string(),
        );
    }
    // The satellite fix: with an idle queue every store flushes the
    // index before the reply is sent, so the on-disk catalog is already
    // current — no drain needed. (A SIGKILL now loses nothing; the
    // process-level test lives in spade-cli's serve_daemon suite.)
    let text = std::fs::read_to_string(dir.join("index.json"))
        .expect("index.json must exist while the daemon is still running");
    let index = JsonValue::parse(&text).expect("parse index");
    let listed: Vec<&str> = index
        .get("dataset")
        .and_then(JsonValue::as_array)
        .expect("dataset rows")
        .iter()
        .filter_map(|e| e.get("key").and_then(JsonValue::as_str))
        .collect();
    for key in &keys {
        assert!(
            listed.contains(&key.as_str()),
            "store {key} missing from the live index {listed:?}"
        );
    }
    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Advise: plan selection on the connection thread
// ---------------------------------------------------------------------------

/// Synthetic training set with an exactly log-linear cycle law
/// (`cycles = 1000 · row_panel`), so the fitted model passes its own
/// confidence gate without running a single simulation.
fn synthetic_model() -> spade_bench::model::CostModel {
    use spade_bench::model::{CostModel, TrainingRow};
    use spade_core::RMatrixPolicy;
    use spade_matrix::analysis::MatrixFeatures;
    use spade_matrix::generators::{Benchmark, Scale};
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let a = b.generate(Scale::Tiny);
        let f = MatrixFeatures::compute(&a).as_vec();
        for rp in [64usize, 256, 1024] {
            for cp in [a.num_cols().max(1), 512] {
                for r_policy in [RMatrixPolicy::Cache, RMatrixPolicy::BypassVictim] {
                    rows.push(TrainingRow {
                        benchmark: b.short_name().to_string(),
                        features: f.clone(),
                        row_panel: rp,
                        col_panel: cp,
                        r_policy,
                        barriers: false,
                        k: 16,
                        pes: 4,
                        cycles: (rp as u64) * 1000,
                    });
                }
            }
        }
    }
    CostModel::fit(&rows).expect("fit synthetic model")
}

fn assert_advise_ok(resp: &JsonValue, expect_source: &str) {
    assert_eq!(
        resp.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "advise reply {}",
        resp.render()
    );
    let result = resp.get("result").expect("advise result");
    assert_eq!(
        result.get("source").and_then(JsonValue::as_str),
        Some(expect_source),
        "advise tier in {}",
        result.render()
    );
    let plan = result.get("plan").expect("advised plan");
    assert!(plan
        .get("row_panel_size")
        .and_then(JsonValue::as_u64)
        .is_some());
    assert!(plan
        .get("col_panel_size")
        .and_then(JsonValue::as_u64)
        .is_some());
    assert!(result
        .get("latency_us")
        .and_then(JsonValue::as_u64)
        .is_some());
}

#[test]
fn advise_answers_while_every_worker_is_busy() {
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        worker_delay: Some(Duration::from_secs(3)),
        ..test_config(None)
    };
    let (addr, handle) = spawn_service(config);

    // Occupy the single worker and the single queue slot; a sim-queued
    // advise would now block for seconds or bounce with `overloaded`.
    let slow = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect slow");
        c.request_line(r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"no_cache":true}"#)
            .expect("slow run")
    });
    std::thread::sleep(Duration::from_millis(300));
    let queued = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect queued");
        c.request_line(r#"{"cmd":"run","benchmark":"kro","k":16,"pes":4,"no_cache":true}"#)
            .expect("queued run")
    });
    std::thread::sleep(Duration::from_millis(300));

    // The daemon is saturated, yet advise answers promptly — it rides
    // the connection thread, not the admission queue.
    let mut c = ServiceClient::connect(&addr).expect("connect advise");
    let started = std::time::Instant::now();
    let resp = parse(
        &c.request_line(r#"{"cmd":"advise","benchmark":"pac","k":16,"pes":4,"scale":"tiny"}"#)
            .expect("advise under load"),
    );
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "advise must not wait for the 3 s worker delay"
    );
    assert_advise_ok(&resp, "heuristic");

    let slow = parse(&slow.join().expect("slow thread"));
    let queued = parse(&queued.join().expect("queued thread"));
    assert_eq!(slow.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(queued.get("ok").and_then(JsonValue::as_bool), Some(true));
    shutdown_and_join(&addr, handle);
}

#[test]
fn cold_or_corrupt_model_degrades_advise_to_heuristic_not_error() {
    let dir = std::env::temp_dir().join(format!("spade_svc_model_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create model dir");

    // Cold: the configured model file does not exist.
    let config = ServiceConfig {
        model_path: Some(dir.join("missing.model")),
        ..test_config(None)
    };
    let (addr, handle) = spawn_service(config);
    let mut c = ServiceClient::connect(&addr).expect("connect");
    let resp = parse(
        &c.request_line(r#"{"cmd":"advise","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}"#)
            .expect("advise cold"),
    );
    assert_advise_ok(&resp, "heuristic");
    shutdown_and_join(&addr, handle);

    // Corrupt: a valid model file with flipped bytes must fail its
    // checksum and degrade, not error.
    let corrupt = dir.join("corrupt.model");
    synthetic_model().save(&corrupt).expect("save model");
    let mut bytes = std::fs::read(&corrupt).expect("read model");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&corrupt, &bytes).expect("corrupt model");
    let config = ServiceConfig {
        model_path: Some(corrupt),
        ..test_config(None)
    };
    let (addr, handle) = spawn_service(config);
    let mut c = ServiceClient::connect(&addr).expect("connect corrupt");
    let resp = parse(
        &c.request_line(r#"{"cmd":"advise","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}"#)
            .expect("advise corrupt"),
    );
    assert_advise_ok(&resp, "heuristic");
    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loaded_model_drives_advise_and_lands_in_metrics() {
    let dir = std::env::temp_dir().join(format!("spade_svc_model_ok_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create model dir");
    let path = dir.join("trained.model");
    synthetic_model().save(&path).expect("save model");

    let config = ServiceConfig {
        model_path: Some(path),
        ..test_config(None)
    };
    let (addr, handle) = spawn_service(config);
    let mut c = ServiceClient::connect(&addr).expect("connect");
    let resp = parse(
        &c.request_line(r#"{"cmd":"advise","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}"#)
            .expect("advise with model"),
    );
    assert_advise_ok(&resp, "model");
    assert!(
        resp.get("result")
            .and_then(|r| r.get("predicted_cycles"))
            .and_then(JsonValue::as_f64)
            .is_some_and(f64::is_finite),
        "model tier reports its prediction: {}",
        resp.render()
    );

    // The counter and histogram from the satellite land in the
    // exposition (and therefore in any scrape).
    let summary = shutdown_and_join(&addr, handle);
    let prom = summary.metrics.to_prometheus();
    assert!(
        prom.contains("spade_advise_total{source=\"model\"} 1"),
        "advise counter missing from exposition:\n{prom}"
    );
    assert!(
        prom.contains("spade_advise_latency_microseconds_count 1"),
        "advise latency histogram missing from exposition:\n{prom}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
