//! Robustness suite for the experiment daemon (`spade_bench::service`):
//! cold/warm byte-identity through the crash-safe cache, byzantine
//! clients (garbage, partial frames, oversized lines, dropped
//! connections), overload back-pressure, per-request deadlines, and
//! graceful shutdown with drain.
//!
//! Every test binds its own daemon on port 0 — the suites are
//! independent and parallel-safe.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

use spade_bench::service::{Service, ServiceClient, ServiceConfig, ServiceSummary};
use spade_sim::JsonValue;

/// Binds a daemon with `config`, serves it on a background thread, and
/// returns the address plus the join handle yielding the summary.
fn spawn_service(config: ServiceConfig) -> (SocketAddr, std::thread::JoinHandle<ServiceSummary>) {
    let svc = Service::bind("127.0.0.1:0", config).expect("bind");
    let addr = svc.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || svc.run().expect("service run"));
    (addr, handle)
}

fn test_config(cache_dir: Option<&Path>) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 2,
        max_connections: 16,
        read_timeout: Duration::from_millis(50),
        cache_dir: cache_dir.map(Path::to_path_buf),
        ..ServiceConfig::default()
    }
}

fn parse(response: &str) -> JsonValue {
    JsonValue::parse(response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn shutdown_and_join(
    addr: &SocketAddr,
    handle: std::thread::JoinHandle<ServiceSummary>,
) -> ServiceSummary {
    let mut c = ServiceClient::connect(addr).expect("connect for shutdown");
    let resp = parse(&c.request_line("{\"cmd\":\"shutdown\"}").expect("shutdown"));
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    handle.join().expect("service thread")
}

const RUN_MYC: &str = r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}"#;

#[test]
fn cold_then_warm_cache_hits_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("spade_svc_warm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_service(test_config(Some(&dir)));

    let mut client = ServiceClient::connect(&addr).expect("connect");
    let cold = client.request_line(RUN_MYC).expect("cold run");
    let warm = client.request_line(RUN_MYC).expect("warm run");
    let cold_doc = parse(&cold);
    let warm_doc = parse(&warm);
    assert_eq!(cold_doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        cold_doc.get("cached").and_then(JsonValue::as_bool),
        Some(false),
        "first request must simulate"
    );
    assert_eq!(
        warm_doc.get("cached").and_then(JsonValue::as_bool),
        Some(true),
        "second request must hit the cache"
    );
    // The headline property: the served result bytes are identical.
    assert_eq!(
        cold_doc.get("result").expect("result").render(),
        warm_doc.get("result").expect("result").render()
    );
    assert_eq!(cold_doc.get("key").unwrap(), warm_doc.get("key").unwrap());
    // No host-wall noise in the payload — that's what makes the bytes
    // reproducible across hosts and restarts.
    let report = cold_doc
        .get("result")
        .and_then(|r| r.get("report"))
        .expect("report");
    assert_eq!(
        report.get("host_wall_ns").and_then(JsonValue::as_f64),
        Some(0.0)
    );

    let summary = shutdown_and_join(&addr, handle);
    assert_eq!(summary.served_ok, 2);
    let cache = summary.cache.expect("cache stats");
    assert_eq!((cache.misses, cache.hits, cache.stores), (1, 1, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_entries_survive_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("spade_svc_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let first = parse(&client.request_line(RUN_MYC).expect("cold run"));
    assert_eq!(
        first.get("cached").and_then(JsonValue::as_bool),
        Some(false)
    );
    shutdown_and_join(&addr, handle);

    // A new daemon process-equivalent over the same directory: the very
    // first request is served from disk, byte-identical.
    let (addr, handle) = spawn_service(test_config(Some(&dir)));
    let mut client = ServiceClient::connect(&addr).expect("reconnect");
    let revived = parse(&client.request_line(RUN_MYC).expect("warm run"));
    assert_eq!(
        revived.get("cached").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        revived.get("result").expect("result").render(),
        first.get("result").expect("result").render()
    );
    shutdown_and_join(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn byzantine_clients_fail_their_requests_not_the_daemon() {
    let (addr, handle) = spawn_service(test_config(None));

    // Garbage on a connection fails that request; the same connection
    // keeps working afterwards.
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let garbage = parse(
        &client
            .request_line("\u{1}\u{2} not json at all")
            .expect("garbage"),
    );
    assert_eq!(garbage.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        garbage
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("bad_request")
    );
    let ping = parse(
        &client
            .request_line("{\"cmd\":\"ping\"}")
            .expect("ping after garbage"),
    );
    assert_eq!(ping.get("ok").and_then(JsonValue::as_bool), Some(true));

    // Valid JSON that is not a valid request: still just a bad_request.
    for frame in [
        "null",
        "[1,2,3]",
        "{\"no_cmd\":true}",
        "{\"cmd\":\"frobnicate\"}",
        "{\"cmd\":\"run\"}",
        "{\"cmd\":\"run\",\"benchmark\":\"nope\"}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"k\":17}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"pes\":3}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"pes\":1000000}",
        "{\"cmd\":\"run\",\"benchmark\":\"myc\",\"rmatrix\":\"psychic\"}",
    ] {
        let resp = parse(&client.request_line(frame).expect("reply"));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("bad_request"),
            "frame {frame:?} should be rejected"
        );
    }

    // A client that sends half a frame and disappears costs nothing.
    {
        let mut half = TcpStream::connect(addr).expect("connect");
        half.write_all(b"{\"cmd\":\"ru").expect("partial write");
        // Dropped here: mid-frame EOF on the daemon side.
    }

    // An oversized line is answered with a structured error, then the
    // connection closes (framing is unrecoverable).
    {
        let mut big = ServiceClient::connect(&addr).expect("connect");
        let huge = format!(
            "{{\"cmd\":\"run\",\"pad\":\"{}\"}}",
            "x".repeat(2 * 1024 * 1024)
        );
        let resp = parse(&big.request_line(&huge).expect("oversize reply"));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("bad_request")
        );
        assert!(big.read_response().is_err(), "connection should be closed");
    }

    // After all of that, the daemon still serves real work.
    let run = parse(&client.request_line(RUN_MYC).expect("run after abuse"));
    assert_eq!(run.get("ok").and_then(JsonValue::as_bool), Some(true));

    let summary = shutdown_and_join(&addr, handle);
    assert!(
        summary.bad_frames >= 11,
        "bad frames: {}",
        summary.bad_frames
    );
    // Only the real run counts (ping/status are not work); the point is
    // that it went through untouched by the abuse around it.
    assert_eq!(summary.served_ok, 1, "garbage never blocks real requests");
}

#[test]
fn overload_answers_with_backpressure_not_buffering() {
    let config = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        // Fault injection: every job is held for 3 s before it runs, so
        // the worker is *provably* busy while the burst below arrives —
        // no dependence on simulation wall time.
        worker_delay: Some(Duration::from_secs(3)),
        ..test_config(None)
    };
    let (addr, handle) = spawn_service(config);

    // Occupy the single worker with one request and the single queue
    // slot with a second. Neither reply is awaited yet — each connection
    // holds at most one in-flight request.
    let slow = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect slow");
        c.request_line(r#"{"cmd":"search","benchmark":"myc","k":16,"pes":4,"no_cache":true}"#)
            .expect("slow search")
    });
    std::thread::sleep(Duration::from_millis(500));
    let queued = std::thread::spawn(move || {
        let mut c = ServiceClient::connect(&addr).expect("connect queued");
        c.request_line(r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"no_cache":true}"#)
            .expect("queued run")
    });
    std::thread::sleep(Duration::from_millis(500));

    // The burst: every extra request is answered *immediately* with a
    // structured overload reply, not buffered.
    for i in 0..4 {
        let mut c = ServiceClient::connect(&addr).expect("connect burst");
        let resp = parse(
            &c.request_line(&format!(
                "{{\"cmd\":\"run\",\"benchmark\":\"kro\",\"k\":16,\"pes\":4,\"no_cache\":true,\"id\":{i}}}"
            ))
            .expect("burst reply"),
        );
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("overloaded"),
            "burst request {i} got {}",
            resp.render()
        );
        assert!(
            resp.get("retry_after_ms")
                .and_then(JsonValue::as_u64)
                .is_some(),
            "overload replies carry a retry hint"
        );
    }

    // The admitted requests still complete normally.
    let slow = parse(&slow.join().expect("slow thread"));
    let queued = parse(&queued.join().expect("queued thread"));
    assert_eq!(slow.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(queued.get("ok").and_then(JsonValue::as_bool), Some(true));

    let summary = shutdown_and_join(&addr, handle);
    assert_eq!(summary.rejected_overload, 4);
    assert_eq!(summary.served_ok, 2);
}

#[test]
fn deadline_exceeded_is_a_structured_error() {
    let (addr, handle) = spawn_service(test_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let resp = parse(
        &client
            .request_line(r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"deadline_cycles":50}"#)
            .expect("deadline run"),
    );
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(JsonValue::as_str),
        Some("deadline_exceeded"),
        "got {}",
        resp.render()
    );
    // The same request with a workable deadline succeeds — the ceiling
    // is per-request, not sticky.
    let ok = parse(
        &client
            .request_line(
                r#"{"cmd":"run","benchmark":"myc","k":16,"pes":4,"deadline_cycles":1000000}"#,
            )
            .expect("ok run"),
    );
    assert_eq!(ok.get("ok").and_then(JsonValue::as_bool), Some(true));
    let summary = shutdown_and_join(&addr, handle);
    assert_eq!((summary.served_ok, summary.served_err), (1, 1));
}

#[test]
fn status_and_ping_report_live_state() {
    let (addr, handle) = spawn_service(test_config(None));
    let mut client = ServiceClient::connect(&addr).expect("connect");
    let ping = parse(&client.request_line("{\"cmd\":\"ping\"}").expect("ping"));
    assert_eq!(ping.get("protocol").and_then(JsonValue::as_u64), Some(1));
    let status = parse(&client.request_line("{\"cmd\":\"status\"}").expect("status"));
    for field in [
        "uptime_ms",
        "queue_depth",
        "queue_capacity",
        "in_flight",
        "workers",
        "served_ok",
        "served_err",
        "rejected_overload",
        "bad_frames",
        "connections",
    ] {
        assert!(status.get(field).is_some(), "status missing {field}");
    }
    assert_eq!(
        status.get("shutting_down").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert!(status.get("cache").is_some_and(|c| *c == JsonValue::Null));
    shutdown_and_join(&addr, handle);
}

#[test]
fn shutdown_drains_and_new_requests_are_turned_away() {
    let (addr, handle) = spawn_service(test_config(None));
    // A connection opened before shutdown...
    let mut early = ServiceClient::connect(&addr).expect("connect early");
    let mut late = ServiceClient::connect(&addr).expect("connect late");
    let resp = parse(
        &early
            .request_line("{\"cmd\":\"shutdown\"}")
            .expect("shutdown"),
    );
    assert_eq!(
        resp.get("draining").and_then(JsonValue::as_bool),
        Some(true)
    );
    // Give every handler a read-timeout tick to observe the flag.
    std::thread::sleep(Duration::from_millis(250));
    // ...whose next request lands during the drain: answered with a
    // structured shutting_down error (or the connection is closed),
    // never silently dropped into a dead queue.
    match late.request_line("{\"cmd\":\"ping\"}") {
        Ok(reply) => {
            let doc = parse(&reply);
            assert_eq!(
                doc.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(JsonValue::as_str),
                Some("shutting_down")
            );
        }
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error during drain: {e}"
        ),
    }
    let summary = handle.join().expect("service thread");
    assert_eq!(summary.served_err, 0);
}
