//! The event-driven ready-queue scheduler is an optimization of the naive
//! cycle-by-cycle tick loop, not a model change: for any workload, plan,
//! fault schedule and worker count, the two drivers must produce
//! byte-identical reports, telemetry series and event traces — including
//! the committed golden trace file.

use std::sync::Arc;

use spade_bench::machines;
use spade_bench::parallel::{Job, JobOutput, ParallelRunner};
use spade_bench::suite::Workload;
use spade_core::{ExecutionPlan, Primitive, SystemConfig};
use spade_matrix::generators::{Benchmark, Scale};
use spade_sim::FaultConfig;

/// Serializes a job output to comparable byte strings: the simulated
/// report JSON (host wall clock stripped by comparing the report struct
/// separately), the telemetry series JSON and the Chrome trace JSON.
fn observable_bytes(o: &JobOutput) -> (String, String) {
    let telemetry = o
        .telemetry
        .as_ref()
        .map(|s| s.to_json().render())
        .unwrap_or_default();
    let trace = o
        .trace
        .as_ref()
        .map(|t| t.to_chrome_json())
        .unwrap_or_default();
    (telemetry, trace)
}

/// Builds paired (event, naive) observed jobs for a fig9 subset on the
/// given machine config.
fn paired_jobs(cfg: &Arc<SystemConfig>) -> Vec<Job> {
    let mut jobs = Vec::new();
    for benchmark in [Benchmark::Myc, Benchmark::Kro, Benchmark::Roa] {
        let w = Arc::new(Workload::prepare(benchmark, Scale::Tiny, 32));
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            let base = Job::new(&w, cfg, primitive, machines::base_plan(&w.a))
                .with_telemetry(Some(128))
                .with_trace(true);
            jobs.push(base.clone());
            jobs.push(base.with_naive_loop(true));
        }
    }
    jobs
}

/// Asserts that every (event, naive) pair in `outputs` matches on the
/// report, the telemetry bytes and the trace bytes.
fn assert_pairs_identical(jobs: &[Job], outputs: &[JobOutput]) {
    for (pair, job) in outputs.chunks_exact(2).zip(jobs.chunks_exact(2)) {
        let label = format!("{}/{:?}", job[0].workload.name, job[0].primitive);
        assert_eq!(
            pair[0].report, pair[1].report,
            "{label}: drivers disagree on the simulated report"
        );
        let (event_telemetry, event_trace) = observable_bytes(&pair[0]);
        let (naive_telemetry, naive_trace) = observable_bytes(&pair[1]);
        assert!(
            event_telemetry == naive_telemetry,
            "{label}: telemetry series differ between drivers"
        );
        assert!(
            event_trace == naive_trace,
            "{label}: event traces differ between drivers"
        );
        assert!(
            !event_trace.is_empty() && !event_telemetry.is_empty(),
            "{label}: observability was requested but came back empty"
        );
    }
}

#[test]
fn drivers_agree_on_reports_telemetry_and_traces_across_thread_counts() {
    let cfg = Arc::new(machines::spade_system(8));
    let jobs = paired_jobs(&cfg);
    let serial: Vec<JobOutput> = ParallelRunner::new(1)
        .run_outputs(&jobs)
        .into_iter()
        .map(|r| r.expect("job failed"))
        .collect();
    assert_pairs_identical(&jobs, &serial);
    // Same check through the multi-worker engine, and the engine itself
    // must be invisible: each slot byte-identical to the serial run.
    for threads in [2, 4] {
        let parallel: Vec<JobOutput> = ParallelRunner::new(threads)
            .run_outputs(&jobs)
            .into_iter()
            .map(|r| r.expect("job failed"))
            .collect();
        assert_pairs_identical(&jobs, &parallel);
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(p.report, s.report, "slot {i} drifted across thread counts");
            assert_eq!(observable_bytes(p), observable_bytes(s));
        }
    }
}

#[test]
fn drivers_agree_under_nonzero_fault_plans() {
    // Fault injection perturbs latencies mid-flight — precisely the kind
    // of schedule the ready queue must reproduce cycle-for-cycle.
    for seed in [3u64, 0xC0FFEE] {
        let mut cfg = machines::spade_system(4);
        cfg.mem.faults = FaultConfig::stress(seed);
        let cfg = Arc::new(cfg);
        let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
        let mut jobs = Vec::new();
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            let base = Job::new(&w, &cfg, primitive, machines::base_plan(&w.a))
                .with_telemetry(Some(64))
                .with_trace(true);
            jobs.push(base.clone());
            jobs.push(base.with_naive_loop(true));
        }
        let outputs: Vec<JobOutput> = ParallelRunner::new(2)
            .run_outputs(&jobs)
            .into_iter()
            .map(|r| r.expect("faulted job failed"))
            .collect();
        let faults = outputs[0].report.mem.faults_injected;
        assert!(faults > 0, "stress({seed}) plan injected nothing");
        assert_pairs_identical(&jobs, &outputs);
    }
}

/// Replays the golden-trace recipe (`spade-cli trace myc --scale tiny
/// --k 16 --pes 4 --window 256`) under both drivers and checks both
/// against the committed file byte for byte.
#[test]
fn golden_trace_is_reproduced_by_both_drivers() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/trace_smoke.trace.json"
    );
    let golden = std::fs::read_to_string(golden_path).expect("golden trace file missing");

    let a = Benchmark::Myc.generate(Scale::Tiny);
    let plan = ExecutionPlan::spmm_base(&a).unwrap();
    let cfg = Arc::new(SystemConfig::scaled(4));
    let w = Arc::new(Workload::from_matrix("myc".to_string(), a, 16));
    for naive in [false, true] {
        let output = Job::new(&w, &cfg, Primitive::Spmm, plan)
            .with_telemetry(Some(256))
            .with_trace(true)
            .with_naive_loop(naive)
            .try_execute_full()
            .expect("golden workload failed");
        let mut trace = output.trace.expect("tracing produced no event log");
        let series = output.telemetry.expect("telemetry was requested");
        // Same post-processing the CLI applies before writing the file.
        let lane = cfg.num_pes as u64 + 1;
        trace.set_lane(lane, "telemetry");
        trace.add_telemetry(&series, lane);
        trace.sort_by_time();
        let driver = if naive { "naive" } else { "event-driven" };
        assert!(
            trace.to_chrome_json() == golden,
            "{driver} driver drifted from the committed golden trace"
        );
    }
}
