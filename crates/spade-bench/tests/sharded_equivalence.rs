//! The sharded driver is a host-parallel execution strategy, not a model
//! change: for any workload, plan, memory-path setting and fault schedule,
//! a run split across N host shards must be byte-identical to the
//! sequential event-driven driver — and therefore to the naive tick-loop
//! oracle — on the report, the telemetry series and the event trace.
//! Only the host-property fields (`shards`, `shard_wall_ns`,
//! `host_wall_ns`) may differ, and report equality already excludes them.

use std::sync::Arc;

use spade_bench::machines;
use spade_bench::parallel::{Job, JobOutput};
use spade_bench::suite::Workload;
use spade_core::{BarrierPolicy, Primitive};
use spade_matrix::generators::{Benchmark, Scale};
use spade_sim::FaultConfig;

/// The shard counts every equivalence sweep pins. The machine configs
/// below have four clusters, so 4 is a real four-way split.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Serializes the observable artifacts of a run to comparable byte
/// strings: telemetry series JSON and Chrome trace JSON.
fn observable_bytes(o: &JobOutput) -> (String, String) {
    let telemetry = o
        .telemetry
        .as_ref()
        .map(|s| s.to_json().render())
        .unwrap_or_default();
    let trace = o
        .trace
        .as_ref()
        .map(|t| t.to_chrome_json())
        .unwrap_or_default();
    (telemetry, trace)
}

fn run(job: &Job) -> JobOutput {
    job.try_execute_full().expect("job failed")
}

/// Asserts byte equality between a sharded run and the 1-shard baseline,
/// and that the run actually recorded the sharding it used.
fn assert_matches_baseline(label: &str, shards: usize, sharded: &JobOutput, base: &JobOutput) {
    assert_eq!(
        sharded.report, base.report,
        "{label}: report diverged at {shards} shards"
    );
    let (base_telemetry, base_trace) = observable_bytes(base);
    let (sh_telemetry, sh_trace) = observable_bytes(sharded);
    assert!(
        sh_telemetry == base_telemetry,
        "{label}: telemetry series diverged at {shards} shards"
    );
    assert!(
        sh_trace == base_trace,
        "{label}: event trace diverged at {shards} shards"
    );
    if shards > 1 {
        assert_eq!(
            sharded.report.shards, shards as u32,
            "{label}: run did not record the requested shard count"
        );
        assert_eq!(
            sharded.report.shard_wall_ns.len(),
            shards,
            "{label}: per-shard wall times missing"
        );
    }
}

#[test]
fn sharded_runs_match_both_sequential_oracles() {
    let cfg = Arc::new(machines::spade_system(16));
    for benchmark in [Benchmark::Myc, Benchmark::Kro] {
        let w = Arc::new(Workload::prepare(benchmark, Scale::Tiny, 32));
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            // Per-column-panel barriers make cross-shard synchronization
            // points part of the schedule, not an idle corner.
            let mut plan = machines::base_plan(&w.a);
            plan.barriers = BarrierPolicy::per_column_panel();
            let observed = Job::new(&w, &cfg, primitive, plan)
                .with_telemetry(Some(128))
                .with_trace(true);
            let label = format!("{}/{:?}", w.name, primitive);

            let base = run(&observed.clone().with_shards(Some(1)));
            let naive = run(&observed.clone().with_naive_loop(true));
            assert_eq!(
                base.report, naive.report,
                "{label}: sequential oracles disagree — sharding untestable"
            );
            let (base_bytes, naive_bytes) = (observable_bytes(&base), observable_bytes(&naive));
            assert!(base_bytes == naive_bytes, "{label}: oracle bytes differ");
            assert!(
                !base_bytes.0.is_empty() && !base_bytes.1.is_empty(),
                "{label}: observability was requested but came back empty"
            );

            for shards in SHARD_COUNTS {
                let sharded = run(&observed.clone().with_shards(Some(shards)));
                assert_matches_baseline(&label, shards, &sharded, &base);
            }
        }
    }
}

#[test]
fn sharded_runs_match_on_the_slow_memory_path() {
    // The slow path exercises the unfiltered hierarchy walk; shard replay
    // must reproduce its latencies exactly as the filtered fast path's.
    let cfg = Arc::new(machines::spade_system(16));
    let w = Arc::new(Workload::prepare(Benchmark::Roa, Scale::Tiny, 32));
    for slow in [false, true] {
        let observed = Job::new(&w, &cfg, Primitive::Spmm, machines::base_plan(&w.a))
            .with_telemetry(Some(128))
            .with_trace(true)
            .with_slow_mem_path(slow);
        let label = format!("roa/slow={slow}");
        let base = run(&observed.clone().with_shards(Some(1)));
        for shards in SHARD_COUNTS {
            let sharded = run(&observed.clone().with_shards(Some(shards)));
            assert_matches_baseline(&label, shards, &sharded, &base);
        }
    }
}

#[test]
fn sharded_runs_match_under_fault_schedules() {
    // Fault injection perturbs latencies mid-flight keyed on (line, cycle,
    // seed): replay must land every roll on the same cycle the sequential
    // driver does, or latencies cascade apart.
    for seed in [3u64, 0xC0FFEE] {
        let mut cfg = machines::spade_system(16);
        cfg.mem.faults = FaultConfig::stress(seed);
        let cfg = Arc::new(cfg);
        let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            let observed = Job::new(&w, &cfg, primitive, machines::base_plan(&w.a))
                .with_telemetry(Some(64))
                .with_trace(true);
            let label = format!("myc/{primitive:?}/stress({seed})");
            let base = run(&observed.clone().with_shards(Some(1)));
            assert!(
                base.report.mem.faults_injected > 0,
                "{label}: plan injected nothing"
            );
            for shards in SHARD_COUNTS {
                let sharded = run(&observed.clone().with_shards(Some(shards)));
                assert_matches_baseline(&label, shards, &sharded, &base);
            }
        }
    }
}

#[test]
fn env_shard_count_is_inherited_and_recorded() {
    // `SPADE_SIM_SHARDS` is read at `SpadeSystem::new` time; a Job with no
    // explicit shard knob inherits it. The CI multi-shard leg relies on
    // this to re-run the whole suite sharded without code changes.
    let inherited = spade_core::sim_shards_from_env();
    let cfg = Arc::new(machines::spade_system(16));
    let w = Arc::new(Workload::prepare(Benchmark::Myc, Scale::Tiny, 32));
    let job = Job::new(&w, &cfg, Primitive::Spmm, machines::base_plan(&w.a));
    let report = job.try_execute().expect("job failed");
    // 16 PEs at 4 agents per cluster = 4 clusters: counts up to 4 survive
    // the cluster clamp.
    assert_eq!(report.shards as usize, inherited.clamp(1, 4));
}
