//! Measures the wall-clock win of the parallel experiment engine: the
//! quick Opt search over the Tiny suite, serial (1 thread) vs. the
//! environment default, asserting bit-identical selected plans/cycles.
//!
//! ```text
//! cargo run --release -p spade-bench --example opt_speedup
//! ```

use std::time::Instant;

use spade_bench::parallel::{num_threads, Job, ParallelRunner};
use spade_bench::{machines, runner, suite::Workload};
use spade_core::Primitive;
use spade_matrix::generators::Scale;

fn main() {
    let cfg = std::sync::Arc::new(machines::spade_system(8));
    let workloads: Vec<_> = Workload::suite(Scale::Tiny, 32)
        .into_iter()
        .map(std::sync::Arc::new)
        .collect();

    // The full quick-search job list for the suite, both primitives.
    let mut jobs = Vec::new();
    for w in &workloads {
        for primitive in [Primitive::Spmm, Primitive::Sddmm] {
            for plan in runner::opt_candidates(w, true) {
                jobs.push(Job::new(w, &cfg, primitive, plan));
            }
        }
    }
    eprintln!("{} jobs over {} workloads", jobs.len(), workloads.len());

    let t0 = Instant::now();
    let serial = ParallelRunner::new(1).run(&jobs);
    let serial_wall = t0.elapsed();

    let threads = num_threads();
    let t1 = Instant::now();
    let parallel = ParallelRunner::new(threads).run(&jobs);
    let parallel_wall = t1.elapsed();

    assert_eq!(serial, parallel, "parallel run diverged from serial");
    let total_cycles: u64 = parallel.iter().map(|r| r.cycles).sum();
    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64();
    eprintln!(
        "serial: {serial_wall:?} | {threads} threads: {parallel_wall:?} | speedup {speedup:.2}x"
    );
    eprintln!(
        "throughput: {:.1} Mcycle/s serial -> {:.1} Mcycle/s parallel",
        total_cycles as f64 / serial_wall.as_secs_f64() / 1e6,
        total_cycles as f64 / parallel_wall.as_secs_f64() / 1e6,
    );
    assert!(
        speedup >= 2.0 || threads < 3,
        "expected >=2x wall-clock win from the parallel engine, got {speedup:.2}x"
    );
}
