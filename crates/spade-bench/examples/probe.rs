//! Developer probe: per-benchmark timing of the suite-scaled SPADE
//! system against its budget.

use spade_bench::{machines, runner, suite::Workload};
use spade_core::Primitive;
use spade_matrix::generators::{Benchmark, Scale};
use std::time::Instant;
fn main() {
    let cfg = machines::spade_system(224);
    for b in [
        Benchmark::Asi,
        Benchmark::Ork,
        Benchmark::Kro,
        Benchmark::Roa,
    ] {
        for k in [32usize, 128] {
            let w = Workload::prepare(b, Scale::Default, k);
            let t0 = Instant::now();
            let r = runner::run_base(&cfg, &w, Primitive::Spmm);
            println!(
                "{} K={k}: {:.0}us sim, host {:.1}s, gbps={:.0}",
                b.short_name(),
                r.time_ns / 1e3,
                t0.elapsed().as_secs_f64(),
                r.achieved_gbps
            );
        }
    }
}
