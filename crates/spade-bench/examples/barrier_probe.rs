//! Developer probe: the barrier capacity effect on cMatrix DRAM traffic
//! (the mechanism behind Table 5).

use spade_bench::{machines, runner, suite::Workload};
use spade_core::{BarrierPolicy, CMatrixPolicy, ExecutionPlan, Primitive, RMatrixPolicy};
use spade_matrix::generators::{Benchmark, Scale};
use spade_sim::LevelKind;

fn main() {
    let cfg = machines::spade_system(224);
    for b in [Benchmark::Ork, Benchmark::Kro, Benchmark::Liv] {
        let w = Workload::prepare(b, Scale::Default, 32);
        let cp = (w.a.num_cols() / 8).max(64);
        for barriers in [BarrierPolicy::None, BarrierPolicy::per_column_panel()] {
            let plan = ExecutionPlan::with_knobs(
                4,
                cp,
                RMatrixPolicy::Cache,
                CMatrixPolicy::Cache,
                barriers,
            )
            .unwrap();
            let r = runner::run_spade(&cfg, &w, Primitive::Spmm, &plan);
            let llc = r.mem.level(LevelKind::Llc);
            println!(
                "{} barriers={}: time={:.0}us dram={} llc_hit={:.2} cmatrix_dram={} stall_vr={}",
                b.short_name(),
                barriers.is_enabled(),
                r.time_ns / 1e3,
                r.dram_accesses,
                llc.hit_rate(),
                r.mem.dram_by_class(spade_sim::DataClass::CMatrix),
                r.stall_no_vr
            );
        }
    }
}
