/// Which data structure an access belongs to. Determines the bypass policy
/// applied by the SPADE pipeline and attributes traffic for the power
/// breakdown (Figure 14) and the per-class analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// The input sparse matrix arrays (`r_ids`, `c_ids`, `vals`).
    SparseIn,
    /// The output sparse matrix values (SDDMM only).
    SparseOut,
    /// The dense matrix indexed by non-zero row ids (`D` in SpMM, `B` in
    /// SDDMM).
    RMatrix,
    /// The dense matrix indexed by non-zero column ids (`B` in SpMM, `Cᵀ`
    /// in SDDMM).
    CMatrix,
}

impl DataClass {
    /// All classes, for iteration in reports.
    pub const ALL: [DataClass; 4] = [
        DataClass::SparseIn,
        DataClass::SparseOut,
        DataClass::RMatrix,
        DataClass::CMatrix,
    ];

    fn index(self) -> usize {
        match self {
            DataClass::SparseIn => 0,
            DataClass::SparseOut => 1,
            DataClass::RMatrix => 2,
            DataClass::CMatrix => 3,
        }
    }
}

/// A level of the modeled hierarchy, for statistics attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKind {
    /// Per-PE (or per-core) L1 data cache.
    L1,
    /// Bypass buffer + victim cache.
    Bbf,
    /// Shared L2.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

impl LevelKind {
    /// All levels, for iteration in reports.
    pub const ALL: [LevelKind; 5] = [
        LevelKind::L1,
        LevelKind::Bbf,
        LevelKind::L2,
        LevelKind::Llc,
        LevelKind::Dram,
    ];

    fn index(self) -> usize {
        match self {
            LevelKind::L1 => 0,
            LevelKind::Bbf => 1,
            LevelKind::L2 => 2,
            LevelKind::Llc => 3,
            LevelKind::Dram => 4,
        }
    }
}

/// Access/hit/write-back counters for one hierarchy level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups performed at this level.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Dirty lines written back *from* this level to the next.
    pub writebacks: u64,
}

impl LevelStats {
    /// Misses (`accesses − hits`), saturating at zero.
    ///
    /// `hits > accesses` cannot happen through [`MemStats`] recording, but
    /// these counters are public (telemetry snapshots difference them, and
    /// callers may build literals), so the derived metric is defined for
    /// every input rather than panicking in debug builds or wrapping in
    /// release builds.
    pub fn misses(&self) -> u64 {
        self.accesses.saturating_sub(self.hits)
    }

    /// Hit rate in `[0, 1]`; zero when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Aggregate statistics for a [`crate::MemorySystem`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    levels: [LevelStats; 5],
    class_dram: [u64; 4],
    /// Requests issued into the memory system by the compute pipelines
    /// (used for the requests-per-cycle metric of Figure 10).
    pub requests_issued: u64,
    /// STLB page-walk count.
    pub tlb_misses: u64,
    /// Faults fired by the injection plan (delays applied, STLB entries
    /// evicted). Zero whenever the plan is inactive, so fault-free and
    /// zero-impact runs compare equal.
    pub faults_injected: u64,
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for `level`.
    pub fn level(&self, level: LevelKind) -> &LevelStats {
        &self.levels[level.index()]
    }

    pub(crate) fn record_access(&mut self, level: LevelKind, hit: bool) {
        let l = &mut self.levels[level.index()];
        l.accesses += 1;
        if hit {
            l.hits += 1;
        }
    }

    pub(crate) fn record_writeback(&mut self, level: LevelKind) {
        self.levels[level.index()].writebacks += 1;
    }

    pub(crate) fn record_dram(&mut self, class: DataClass) {
        self.class_dram[class.index()] += 1;
    }

    /// DRAM accesses attributed to `class`.
    pub fn dram_by_class(&self, class: DataClass) -> u64 {
        self.class_dram[class.index()]
    }

    /// Total DRAM accesses (reads + write-backs).
    pub fn dram_accesses(&self) -> u64 {
        self.level(LevelKind::Dram).accesses
    }

    /// Total LLC lookups.
    pub fn llc_accesses(&self) -> u64 {
        self.level(LevelKind::Llc).accesses
    }

    /// Requests per cycle over an `elapsed` interval.
    pub fn requests_per_cycle(&self, elapsed: crate::Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.requests_issued as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_stats_derive_misses_and_rate() {
        let s = LevelStats {
            accesses: 10,
            hits: 7,
            writebacks: 1,
        };
        assert_eq!(s.misses(), 3);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_level_has_zero_hit_rate() {
        assert_eq!(LevelStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn mem_stats_attribute_by_level_and_class() {
        let mut m = MemStats::new();
        m.record_access(LevelKind::L1, true);
        m.record_access(LevelKind::L1, false);
        m.record_access(LevelKind::Dram, true);
        m.record_dram(DataClass::CMatrix);
        m.record_writeback(LevelKind::L2);
        assert_eq!(m.level(LevelKind::L1).accesses, 2);
        assert_eq!(m.level(LevelKind::L1).hits, 1);
        assert_eq!(m.level(LevelKind::L2).writebacks, 1);
        assert_eq!(m.dram_accesses(), 1);
        assert_eq!(m.dram_by_class(DataClass::CMatrix), 1);
        assert_eq!(m.dram_by_class(DataClass::RMatrix), 0);
    }

    #[test]
    fn requests_per_cycle_handles_zero_elapsed() {
        let m = MemStats::new();
        assert_eq!(m.requests_per_cycle(0), 0.0);
    }

    #[test]
    fn misses_saturate_on_degenerate_counters() {
        // Counters are public; a hand-built (or differenced) value with
        // hits > accesses must yield 0 misses, not a panic or wraparound.
        let s = LevelStats {
            accesses: 3,
            hits: 5,
            writebacks: 0,
        };
        assert_eq!(s.misses(), 0);
        assert_eq!(LevelStats::default().misses(), 0);
    }
}
