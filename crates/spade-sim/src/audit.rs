//! Invariant auditing for the memory hierarchy.
//!
//! The auditor is a bookkeeping layer the timing model never reads back
//! from: enabling or disabling it cannot change a single completion cycle.
//! It tracks every read the hierarchy promises to complete and exposes
//! checks a host simulation loop can run periodically:
//!
//! * cache occupancy never exceeds the configured geometry,
//! * per-level hit counters never exceed access counters,
//! * in-flight read accounting (the MSHR-leak check): outstanding reads
//!   stay under the requesters' aggregate queue capacity and drain to zero
//!   by the end of a run.
//!
//! The auditor is on in debug builds and opt-in in release builds via the
//! `SPADE_AUDIT` environment variable (any value except `0`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// Whether auditing should be active for this process: always in debug
/// builds, and in release builds when `SPADE_AUDIT` is set to anything
/// but `0`.
pub fn audit_enabled() -> bool {
    cfg!(debug_assertions) || std::env::var_os("SPADE_AUDIT").is_some_and(|v| v != *"0")
}

/// Tracks promised read completions so leaks become visible.
///
/// Each read's completion cycle is pushed; entries whose completion time
/// has passed are retired lazily as simulated time advances. Whatever
/// remains is in flight.
#[derive(Debug, Default)]
pub struct ReadTracker {
    outstanding: BinaryHeap<Reverse<Cycle>>,
    issued: u64,
    retired: u64,
}

impl ReadTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read issued at `now` that completes at `done`.
    pub fn record(&mut self, now: Cycle, done: Cycle) {
        self.retire(now);
        self.outstanding.push(Reverse(done));
        self.issued += 1;
    }

    /// Retires every read whose completion time is at or before `now`.
    pub fn retire(&mut self, now: Cycle) {
        while self.outstanding.peek().is_some_and(|&Reverse(d)| d <= now) {
            self.outstanding.pop();
            self.retired += 1;
        }
    }

    /// Reads still in flight (after the last retire).
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Total reads recorded.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Clears all state (a new run starts at cycle 0).
    pub fn reset(&mut self) {
        self.outstanding.clear();
        self.issued = 0;
        self.retired = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_retire_as_time_passes() {
        let mut t = ReadTracker::new();
        t.record(0, 10);
        t.record(0, 20);
        assert_eq!(t.outstanding(), 2);
        t.retire(10);
        assert_eq!(t.outstanding(), 1);
        t.retire(25);
        assert_eq!(t.outstanding(), 0);
        assert_eq!(t.issued(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = ReadTracker::new();
        t.record(0, 100);
        t.reset();
        assert_eq!(t.outstanding(), 0);
        assert_eq!(t.issued(), 0);
    }
}
