use crate::{Cache, CacheConfig, Cycle, Line, LINE_BYTES};

/// Secondary-TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Page-walk penalty in PE cycles on a miss.
    pub miss_penalty: Cycle,
}

impl StlbConfig {
    /// An Ice-Lake-like STLB: 2048 entries, 8-way, 4 KiB pages, ~150 ns
    /// walk.
    pub fn ice_lake() -> Self {
        StlbConfig {
            entries: 2048,
            ways: 8,
            page_bytes: 4096,
            miss_penalty: 120,
        }
    }
}

/// A secondary TLB shared by a CPU core and its SPADE PEs (§4.1: "the PEs
/// share the core's STLB, like the DMA engines in ref.\[24\] of the paper").
///
/// Pages of the matrix data structures are pinned before a SPADE-mode
/// section, so a miss costs a page walk but never a page fault. The TLB is
/// modeled as a small tag-only cache over page numbers.
///
/// # Example
///
/// ```
/// use spade_sim::{Stlb, StlbConfig};
///
/// let mut tlb = Stlb::new(StlbConfig::ice_lake());
/// let first = tlb.translate(0); // cold miss: page-walk penalty
/// let again = tlb.translate(1); // same page (line 1 is in page 0): hit
/// assert!(first > again);
/// ```
#[derive(Debug, Clone)]
pub struct Stlb {
    config: StlbConfig,
    entries: Cache,
    hits: u64,
    misses: u64,
}

impl Stlb {
    /// Creates an empty STLB.
    pub fn new(config: StlbConfig) -> Self {
        let size = config.entries * LINE_BYTES as usize; // one "line" per entry
        Stlb {
            config,
            entries: Cache::new(CacheConfig::new(size, config.ways)),
            hits: 0,
            misses: 0,
        }
    }

    /// Translates the page containing cache line `line`, returning the
    /// added latency in cycles (0 on a hit, the walk penalty on a miss).
    #[inline]
    pub fn translate(&mut self, line: Line) -> Cycle {
        let page = line * LINE_BYTES / self.config.page_bytes;
        if self.entries.access(page, false).is_hit() {
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            self.config.miss_penalty
        }
    }

    /// Records a translation served by the hierarchy's translation-reuse
    /// latch instead of a lookup. The latched page is by construction the
    /// most recently translated — resident and MRU in its set — so a real
    /// [`Stlb::translate`] would hit without moving any replacement
    /// state; only the hit counter needs to advance.
    #[inline]
    pub fn note_reuse_hit(&mut self) {
        self.hits += 1;
    }

    /// Evicts the entry for the page containing `line`, if present.
    /// Returns whether an entry was actually dropped. Used by fault
    /// injection to model shoot-downs; the next translation of that page
    /// pays a full walk again.
    #[inline]
    pub fn evict_line(&mut self, line: Line) -> bool {
        let page = line * LINE_BYTES / self.config.page_bytes;
        self.entries.invalidate(page).is_some()
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses (page walks) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Stlb {
        Stlb::new(StlbConfig {
            entries: 4,
            ways: 2,
            page_bytes: 4096,
            miss_penalty: 100,
        })
    }

    #[test]
    fn first_touch_walks_then_hits() {
        let mut tlb = small();
        assert_eq!(tlb.translate(0), 100);
        assert_eq!(tlb.translate(0), 0);
        assert_eq!(tlb.misses(), 1);
        assert_eq!(tlb.hits(), 1);
    }

    #[test]
    fn lines_in_same_page_share_entry() {
        let mut tlb = small();
        tlb.translate(0);
        // 4096 / 64 = 64 lines per page.
        assert_eq!(tlb.translate(63), 0);
        assert_eq!(tlb.translate(64), 100); // next page
    }

    #[test]
    fn capacity_misses_occur() {
        let mut tlb = small(); // 4 entries
        for page in 0..8u64 {
            tlb.translate(page * 64);
        }
        // Revisit page 0: evicted by now.
        assert_eq!(tlb.translate(0), 100);
    }
}
