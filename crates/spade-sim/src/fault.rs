//! Deterministic, seeded fault injection for the memory hierarchy.
//!
//! A [`FaultConfig`] is a *plan*, not a process: every potential fault site
//! (a DRAM response, a cache-port crossing, an STLB translation) rolls a
//! stateless SplitMix64-style hash of `(seed, site, line, cycle)` against
//! its configured probability. Because no PRNG state is threaded through
//! the simulation, the outcome at a site depends only on the plan and the
//! request itself — never on how many *other* faults fired before it. Two
//! consequences the tests rely on:
//!
//! * a plan with all probabilities at zero is an exact no-op: the run is
//!   bit-identical to one with no plan at all, and
//! * a given plan is fully reproducible across runs and thread counts.
//!
//! Faults perturb *timing only* (extra latency, lost TLB entries); they
//! never corrupt data, so a faulty run must still validate against the
//! gold kernels.

use crate::{Cycle, Line};

/// Site salts keep the three fault classes statistically independent even
/// when they hash the same `(line, cycle)` pair.
const SALT_DRAM: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_PORT: u64 = 0xC2B2_AE3D_27D4_EB4F;
const SALT_STLB: u64 = 0x1656_67B1_9E37_79F9;

/// SplitMix64 output mix: a strong bijective scrambler.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` determined entirely by the inputs.
fn roll(seed: u64, salt: u64, a: u64, b: u64) -> f64 {
    let h = mix(seed ^ salt ^ mix(a.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_mul(b | 1)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic fault-injection plan for one [`crate::MemorySystem`].
///
/// Probabilities are per fault site: each DRAM read, each cached access
/// and each translation rolls independently. All-zero probabilities (the
/// default) disable injection entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed identifying the plan. Two plans with the same probabilities
    /// but different seeds fire at different sites.
    pub seed: u64,
    /// Probability that a DRAM read response is delayed.
    pub dram_delay_prob: f64,
    /// Extra cycles added to a delayed DRAM response.
    pub dram_delay_cycles: Cycle,
    /// Probability of a transient extra-latency event on a cache/NoC port
    /// crossing (applied at the start of a cached access).
    pub port_delay_prob: f64,
    /// Extra cycles added by a port event.
    pub port_delay_cycles: Cycle,
    /// Probability that an access evicts the STLB entry for its own page
    /// *before* translating (modeling shoot-downs and capacity churn).
    pub stlb_evict_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultConfig {
    /// The empty plan: no faults, exact no-op.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            dram_delay_prob: 0.0,
            dram_delay_cycles: 0,
            port_delay_prob: 0.0,
            port_delay_cycles: 0,
            stlb_evict_prob: 0.0,
        }
    }

    /// A mild plan: ~1% of DRAM responses +200 cycles, ~0.5% of port
    /// crossings +8 cycles, ~0.1% of translations lose their entry.
    pub fn light(seed: u64) -> Self {
        FaultConfig {
            seed,
            dram_delay_prob: 0.01,
            dram_delay_cycles: 200,
            port_delay_prob: 0.005,
            port_delay_cycles: 8,
            stlb_evict_prob: 0.001,
        }
    }

    /// An aggressive plan for stress tests: ~10% of DRAM responses +1000
    /// cycles, ~5% of port crossings +32 cycles, ~2% of translations lose
    /// their entry.
    pub fn stress(seed: u64) -> Self {
        FaultConfig {
            seed,
            dram_delay_prob: 0.1,
            dram_delay_cycles: 1000,
            port_delay_prob: 0.05,
            port_delay_cycles: 32,
            stlb_evict_prob: 0.02,
        }
    }

    /// Whether any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.dram_delay_prob > 0.0 || self.port_delay_prob > 0.0 || self.stlb_evict_prob > 0.0
    }

    /// Extra latency injected into the DRAM read of `line` issued at `now`.
    pub fn dram_extra(&self, line: Line, now: Cycle) -> Cycle {
        if self.dram_delay_prob <= 0.0 {
            return 0;
        }
        if roll(self.seed, SALT_DRAM, line, now) < self.dram_delay_prob {
            self.dram_delay_cycles
        } else {
            0
        }
    }

    /// Extra latency injected at the cache-port crossing of `agent`'s
    /// access to `line` at `now`.
    pub fn port_extra(&self, agent: usize, line: Line, now: Cycle) -> Cycle {
        if self.port_delay_prob <= 0.0 {
            return 0;
        }
        let site = line ^ (agent as u64).rotate_left(32);
        if roll(self.seed, SALT_PORT, site, now) < self.port_delay_prob {
            self.port_delay_cycles
        } else {
            0
        }
    }

    /// Whether the access to `line` at `now` first evicts its own STLB
    /// entry.
    pub fn evicts_stlb(&self, line: Line, now: Cycle) -> bool {
        self.stlb_evict_prob > 0.0 && roll(self.seed, SALT_STLB, line, now) < self.stlb_evict_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let f = FaultConfig::light(7);
        for line in 0..100u64 {
            assert_eq!(f.dram_extra(line, 10), f.dram_extra(line, 10));
            assert_eq!(f.port_extra(3, line, 10), f.port_extra(3, line, 10));
            assert_eq!(f.evicts_stlb(line, 10), f.evicts_stlb(line, 10));
        }
    }

    #[test]
    fn empty_plan_never_fires() {
        let f = FaultConfig::none();
        assert!(!f.is_active());
        for line in 0..1000u64 {
            assert_eq!(f.dram_extra(line, line), 0);
            assert_eq!(f.port_extra(0, line, line), 0);
            assert!(!f.evicts_stlb(line, line));
        }
    }

    #[test]
    fn rates_roughly_match_probabilities() {
        let f = FaultConfig::stress(42);
        let fired = (0..20_000u64).filter(|&l| f.dram_extra(l, 0) > 0).count();
        // 10% nominal; allow a generous band.
        assert!((1000..3000).contains(&fired), "fired {fired} of 20000");
    }

    #[test]
    fn seeds_select_different_sites() {
        let a = FaultConfig::stress(1);
        let b = FaultConfig::stress(2);
        let differs = (0..1000u64).any(|l| (a.dram_extra(l, 5) > 0) != (b.dram_extra(l, 5) > 0));
        assert!(differs);
    }
}
