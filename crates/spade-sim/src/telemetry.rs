//! Windowed time-series telemetry for the cycle loop.
//!
//! The paper's key analyses are time-resolved — Figure 10 plots
//! requests-per-cycle and pipeline occupancy *over the run* — but the
//! aggregate [`MemStats`](crate::MemStats)/report counters only say how a
//! run ended, not when it went bad. This module samples cumulative counters
//! into fixed-width cycle windows as the simulation advances.
//!
//! Design constraints:
//!
//! * **Pure observation.** The recorder only reads counters; it never feeds
//!   anything back into timing, so a telemetry-enabled run produces
//!   bit-identical aggregate results to a telemetry-disabled run.
//! * **Near-zero overhead when off.** The driver holds an
//!   `Option<TelemetryRecorder>`; when `None`, the per-iteration cost is
//!   one branch. When on, counters are materialized only at window
//!   boundaries (the probe is a closure, called lazily).
//! * **Fast-forward exact.** The cycle loop skips idle spans where no
//!   counter can change, so windows crossed in one jump are emitted as
//!   zero-delta samples — identical to what a cycle-by-cycle walk would
//!   have recorded.

use crate::json::JsonValue;
use crate::{Cycle, LevelKind, LINE_BYTES, PE_GHZ};

/// Cumulative counter snapshot taken at a window boundary. The driver
/// (the `spade-core` cycle loop) fills this from its memory system and PE
/// state; the recorder differences consecutive snapshots into samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryCounters {
    /// Requests issued into the memory system (Figure 10 numerator).
    pub requests_issued: u64,
    /// STLB page walks.
    pub tlb_misses: u64,
    /// Faults fired by the injection plan.
    pub faults_injected: u64,
    /// Accesses per hierarchy level, indexed like [`LevelKind::ALL`].
    pub level_accesses: [u64; 5],
    /// Hits per hierarchy level, indexed like [`LevelKind::ALL`].
    pub level_hits: [u64; 5],
    /// Vector operations executed across all PEs.
    pub vops: u64,
    /// Sparse tuples consumed across all PEs.
    pub tuples: u64,
    /// Cycles stalled waiting for a vector-register slot, summed over PEs.
    pub stall_no_vr: u64,
    /// Cycles stalled waiting for a reservation-station slot, summed over
    /// PEs.
    pub stall_no_rs: u64,
    /// Cycles stalled waiting for a dense load-queue slot, summed over PEs.
    pub stall_no_dense_lq: u64,
    /// Per-PE cumulative vOp counts (the busy proxy for occupancy plots).
    pub pe_vops: Vec<u64>,
}

impl TelemetryCounters {
    /// Copies `src` into `self`, reusing the per-PE buffer's allocation
    /// (a derived `clone` would reallocate it on every window boundary).
    pub fn copy_from(&mut self, src: &TelemetryCounters) {
        let TelemetryCounters {
            requests_issued,
            tlb_misses,
            faults_injected,
            level_accesses,
            level_hits,
            vops,
            tuples,
            stall_no_vr,
            stall_no_rs,
            stall_no_dense_lq,
            pe_vops,
        } = src;
        self.requests_issued = *requests_issued;
        self.tlb_misses = *tlb_misses;
        self.faults_injected = *faults_injected;
        self.level_accesses = *level_accesses;
        self.level_hits = *level_hits;
        self.vops = *vops;
        self.tuples = *tuples;
        self.stall_no_vr = *stall_no_vr;
        self.stall_no_rs = *stall_no_rs;
        self.stall_no_dense_lq = *stall_no_dense_lq;
        self.pe_vops.clear();
        self.pe_vops.extend_from_slice(pe_vops);
    }
}

/// Instantaneous (non-cumulative) gauges read at a window boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryGauges {
    /// Reads currently in flight across all PE load queues.
    pub in_flight_loads: u64,
    /// PEs that have not yet terminated.
    pub active_pes: u32,
}

/// One fixed-width window of activity: counter deltas over the window plus
/// gauges read at its close.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySample {
    /// First cycle covered by this window.
    pub start: Cycle,
    /// Window width in cycles. Equal to the configured window except for
    /// the final, possibly partial, window of a run.
    pub len: Cycle,
    /// Memory requests issued during the window.
    pub requests: u64,
    /// DRAM accesses during the window.
    pub dram_accesses: u64,
    /// STLB page walks during the window.
    pub tlb_misses: u64,
    /// Injected faults fired during the window.
    pub faults: u64,
    /// Per-level accesses during the window, indexed like
    /// [`LevelKind::ALL`].
    pub level_accesses: [u64; 5],
    /// Per-level hits during the window, indexed like [`LevelKind::ALL`].
    pub level_hits: [u64; 5],
    /// Vector operations executed during the window (all PEs).
    pub vops: u64,
    /// Sparse tuples consumed during the window (all PEs).
    pub tuples: u64,
    /// Vector-register stall cycles during the window (all PEs).
    pub stall_no_vr: u64,
    /// Reservation-station stall cycles during the window (all PEs).
    pub stall_no_rs: u64,
    /// Dense load-queue stall cycles during the window (all PEs).
    pub stall_no_dense_lq: u64,
    /// Per-PE vOps executed during the window (busy/occupancy proxy).
    pub pe_vops: Vec<u64>,
    /// Reads in flight when the window closed.
    pub in_flight_loads: u64,
    /// PEs still running when the window closed.
    pub active_pes: u32,
}

impl TelemetrySample {
    /// Memory requests per cycle over this window; zero for a zero-length
    /// window (cannot occur for recorder-produced samples, but the
    /// degenerate case is defined rather than a division by zero).
    pub fn requests_per_cycle(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.requests as f64 / self.len as f64
        }
    }

    /// Achieved DRAM bandwidth over this window in GB/s at the PE clock;
    /// zero for a zero-length window.
    pub fn dram_gbps(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            (self.dram_accesses * LINE_BYTES) as f64 / self.len as f64 * PE_GHZ
        }
    }

    /// Hit rate at `level` over this window; zero when the level saw no
    /// accesses during the window.
    pub fn hit_rate(&self, level: LevelKind) -> f64 {
        let i = level_index(level);
        if self.level_accesses[i] == 0 {
            0.0
        } else {
            self.level_hits[i] as f64 / self.level_accesses[i] as f64
        }
    }

    /// This sample as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let levels = LevelKind::ALL
            .iter()
            .enumerate()
            .map(|(i, level)| {
                (
                    level_name(*level),
                    JsonValue::object([
                        ("accesses", self.level_accesses[i].into()),
                        ("hits", self.level_hits[i].into()),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        JsonValue::object([
            ("start", self.start.into()),
            ("len", self.len.into()),
            ("requests", self.requests.into()),
            ("requests_per_cycle", self.requests_per_cycle().into()),
            ("dram_accesses", self.dram_accesses.into()),
            ("dram_gbps", self.dram_gbps().into()),
            ("tlb_misses", self.tlb_misses.into()),
            ("faults", self.faults.into()),
            ("levels", JsonValue::object(levels)),
            ("vops", self.vops.into()),
            ("tuples", self.tuples.into()),
            ("stall_no_vr", self.stall_no_vr.into()),
            ("stall_no_rs", self.stall_no_rs.into()),
            ("stall_no_dense_lq", self.stall_no_dense_lq.into()),
            (
                "pe_vops",
                JsonValue::Array(self.pe_vops.iter().map(|v| (*v).into()).collect()),
            ),
            ("in_flight_loads", self.in_flight_loads.into()),
            ("active_pes", self.active_pes.into()),
        ])
    }
}

/// Stable lowercase names for hierarchy levels in JSON artifacts.
pub fn level_name(level: LevelKind) -> &'static str {
    match level {
        LevelKind::L1 => "l1",
        LevelKind::Bbf => "bbf",
        LevelKind::L2 => "l2",
        LevelKind::Llc => "llc",
        LevelKind::Dram => "dram",
    }
}

fn level_index(level: LevelKind) -> usize {
    LevelKind::ALL.iter().position(|l| *l == level).unwrap()
}

/// A completed time series: the configured window width plus one sample
/// per window, in time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySeries {
    /// Configured window width in cycles.
    pub window: Cycle,
    /// Samples in increasing `start` order; the last may be partial.
    pub samples: Vec<TelemetrySample>,
}

impl TelemetrySeries {
    /// Largest per-window requests-per-cycle value; zero for an empty
    /// series.
    pub fn peak_requests_per_cycle(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.requests_per_cycle())
            .fold(0.0, f64::max)
    }

    /// Request-weighted mean requests-per-cycle (total requests over total
    /// covered cycles); zero for an empty series.
    pub fn mean_requests_per_cycle(&self) -> f64 {
        let cycles: Cycle = self.samples.iter().map(|s| s.len).sum();
        if cycles == 0 {
            return 0.0;
        }
        let requests: u64 = self.samples.iter().map(|s| s.requests).sum();
        requests as f64 / cycles as f64
    }

    /// This series as a JSON object:
    /// `{"window": W, "samples": [...]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("window", self.window.into()),
            (
                "samples",
                JsonValue::Array(self.samples.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

/// Samples cumulative counters into fixed-width windows as the cycle loop
/// advances. Drive it with [`advance_to`](Self::advance_to) at the top of
/// every loop iteration and close it with [`finish`](Self::finish).
#[derive(Debug)]
pub struct TelemetryRecorder {
    window: Cycle,
    num_pes: usize,
    /// End (exclusive) of the currently open window.
    next_boundary: Cycle,
    last: TelemetryCounters,
    /// Reusable buffer handed to the probe, so boundary crossings in the
    /// steady state allocate nothing on the driver side.
    scratch: TelemetryCounters,
    samples: Vec<TelemetrySample>,
}

impl TelemetryRecorder {
    /// Creates a recorder with the given window width (must be nonzero;
    /// the driver validates this) for a system with `num_pes` PEs.
    pub fn new(window: Cycle, num_pes: usize) -> Self {
        assert!(window > 0, "telemetry window must be at least one cycle");
        TelemetryRecorder {
            window,
            num_pes,
            next_boundary: window,
            last: TelemetryCounters {
                pe_vops: vec![0; num_pes],
                ..TelemetryCounters::default()
            },
            scratch: TelemetryCounters::default(),
            samples: Vec::new(),
        }
    }

    /// Closes every window that ends at or before `now`. `probe` is called
    /// at most once, and only when at least one window closes — this keeps
    /// the common (no boundary crossed) path to a single comparison. The
    /// probe fills the recorder's scratch snapshot (stale contents from the
    /// previous boundary included — overwrite, don't accumulate) and
    /// returns the instantaneous gauges.
    ///
    /// Counter activity at cycle `t` must be recorded by the driver *after*
    /// calling `advance_to(t, ..)`, so it lands in the window containing
    /// `t`. Windows crossed without a call in between (idle fast-forward)
    /// are emitted as zero-delta samples, which is exact because no counter
    /// changes while every agent sleeps.
    pub fn advance_to<F>(&mut self, now: Cycle, probe: F)
    where
        F: FnOnce(&mut TelemetryCounters) -> TelemetryGauges,
    {
        if now < self.next_boundary {
            return;
        }
        let mut counters = std::mem::take(&mut self.scratch);
        let gauges = probe(&mut counters);
        // The first closing window absorbs all activity since the last
        // snapshot; any further windows crossed in the same jump were idle.
        self.emit_delta(&counters, gauges, self.window);
        while now >= self.next_boundary {
            self.emit_zero(gauges);
        }
        self.scratch = counters;
    }

    /// Closes any remaining full windows and the final partial window
    /// (covering cycles up to and including `end`), returning the series.
    pub fn finish<F>(mut self, end: Cycle, probe: F) -> TelemetrySeries
    where
        F: FnOnce(&mut TelemetryCounters) -> TelemetryGauges,
    {
        let mut counters = std::mem::take(&mut self.scratch);
        let gauges = probe(&mut counters);
        if end >= self.next_boundary {
            self.emit_delta(&counters, gauges, self.window);
            while end >= self.next_boundary {
                self.emit_zero(gauges);
            }
        }
        // The open window [next_boundary - window, end] is partial (or
        // empty when the run ended exactly on a boundary, in which case it
        // still records the final gauge readings over zero-activity tail).
        let start = self.next_boundary - self.window;
        if end >= start {
            self.emit(&counters, gauges, start, end - start + 1);
        }
        TelemetrySeries {
            window: self.window,
            samples: self.samples,
        }
    }

    fn emit_delta(&mut self, counters: &TelemetryCounters, gauges: TelemetryGauges, len: Cycle) {
        let start = self.next_boundary - self.window;
        self.emit(counters, gauges, start, len);
        self.next_boundary += self.window;
    }

    fn emit_zero(&mut self, gauges: TelemetryGauges) {
        let start = self.next_boundary - self.window;
        let sample = TelemetrySample {
            start,
            len: self.window,
            pe_vops: vec![0; self.num_pes],
            in_flight_loads: gauges.in_flight_loads,
            active_pes: gauges.active_pes,
            ..TelemetrySample::default()
        };
        self.samples.push(sample);
        self.next_boundary += self.window;
    }

    fn emit(
        &mut self,
        counters: &TelemetryCounters,
        gauges: TelemetryGauges,
        start: Cycle,
        len: Cycle,
    ) {
        let d = |a: u64, b: u64| a.saturating_sub(b);
        let mut level_accesses = [0u64; 5];
        let mut level_hits = [0u64; 5];
        for (i, slot) in level_accesses.iter_mut().enumerate() {
            *slot = d(counters.level_accesses[i], self.last.level_accesses[i]);
        }
        for (i, slot) in level_hits.iter_mut().enumerate() {
            *slot = d(counters.level_hits[i], self.last.level_hits[i]);
        }
        let pe_vops = counters
            .pe_vops
            .iter()
            .zip(self.last.pe_vops.iter())
            .map(|(now, then)| d(*now, *then))
            .collect();
        self.samples.push(TelemetrySample {
            start,
            len,
            requests: d(counters.requests_issued, self.last.requests_issued),
            dram_accesses: level_accesses[4],
            tlb_misses: d(counters.tlb_misses, self.last.tlb_misses),
            faults: d(counters.faults_injected, self.last.faults_injected),
            level_accesses,
            level_hits,
            vops: d(counters.vops, self.last.vops),
            tuples: d(counters.tuples, self.last.tuples),
            stall_no_vr: d(counters.stall_no_vr, self.last.stall_no_vr),
            stall_no_rs: d(counters.stall_no_rs, self.last.stall_no_rs),
            stall_no_dense_lq: d(counters.stall_no_dense_lq, self.last.stall_no_dense_lq),
            pe_vops,
            in_flight_loads: gauges.in_flight_loads,
            active_pes: gauges.active_pes,
        });
        self.last.copy_from(counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probe closure reporting cumulative `requests`/`vops` for a
    /// single-PE system, in the fill-the-scratch style the driver uses.
    fn probe(
        requests: u64,
        vops: u64,
        gauges: TelemetryGauges,
    ) -> impl FnOnce(&mut TelemetryCounters) -> TelemetryGauges {
        move |c| {
            c.requests_issued = requests;
            c.vops = vops;
            c.pe_vops.clear();
            c.pe_vops.push(vops);
            gauges
        }
    }

    #[test]
    fn windows_close_at_boundaries_with_deltas() {
        let mut r = TelemetryRecorder::new(10, 1);
        r.advance_to(5, |_| unreachable!("no boundary crossed yet"));
        r.advance_to(10, probe(4, 2, TelemetryGauges::default()));
        let series = r.finish(14, probe(9, 3, TelemetryGauges::default()));
        assert_eq!(series.window, 10);
        assert_eq!(series.samples.len(), 2);
        assert_eq!(series.samples[0].start, 0);
        assert_eq!(series.samples[0].len, 10);
        assert_eq!(series.samples[0].requests, 4);
        assert_eq!(series.samples[0].pe_vops, vec![2]);
        assert_eq!(series.samples[1].start, 10);
        assert_eq!(series.samples[1].len, 5);
        assert_eq!(series.samples[1].requests, 5);
        assert_eq!(series.samples[1].pe_vops, vec![1]);
    }

    #[test]
    fn fast_forward_jump_emits_zero_windows() {
        let mut r = TelemetryRecorder::new(10, 1);
        // Jump from cycle 0 straight to cycle 35: windows [0,10), [10,20),
        // [20,30) all close; the first takes the deltas, the rest are idle.
        let gauges = TelemetryGauges {
            in_flight_loads: 3,
            active_pes: 1,
        };
        r.advance_to(35, probe(7, 1, gauges));
        let series = r.finish(35, probe(7, 1, gauges));
        assert_eq!(series.samples.len(), 4);
        assert_eq!(series.samples[0].requests, 7);
        assert_eq!(series.samples[1].requests, 0);
        assert_eq!(series.samples[1].in_flight_loads, 3);
        assert_eq!(series.samples[2].requests, 0);
        assert_eq!(series.samples[3].start, 30);
        assert_eq!(series.samples[3].len, 6);
    }

    #[test]
    fn series_summaries() {
        let mut r = TelemetryRecorder::new(4, 1);
        r.advance_to(4, probe(8, 0, TelemetryGauges::default()));
        let series = r.finish(7, probe(10, 0, TelemetryGauges::default()));
        assert!((series.peak_requests_per_cycle() - 2.0).abs() < 1e-12);
        assert!((series.mean_requests_per_cycle() - 10.0 / 8.0).abs() < 1e-12);
        assert_eq!(TelemetrySeries::default().mean_requests_per_cycle(), 0.0);
    }

    #[test]
    fn sample_rates_handle_degenerate_windows() {
        let s = TelemetrySample::default();
        assert_eq!(s.requests_per_cycle(), 0.0);
        assert_eq!(s.dram_gbps(), 0.0);
        assert_eq!(s.hit_rate(LevelKind::L1), 0.0);
    }

    #[test]
    fn json_is_valid() {
        let mut r = TelemetryRecorder::new(16, 2);
        let fill = |c: &mut TelemetryCounters| {
            c.copy_from(&TelemetryCounters {
                requests_issued: 5,
                level_accesses: [5, 1, 1, 1, 1],
                level_hits: [4, 0, 0, 0, 0],
                pe_vops: vec![2, 3],
                vops: 5,
                ..TelemetryCounters::default()
            });
            TelemetryGauges::default()
        };
        r.advance_to(16, fill);
        let series = r.finish(20, fill);
        let text = series.to_json().render();
        assert_eq!(crate::json::validate(&text), Ok(()));
        assert!(text.contains("\"requests_per_cycle\""));
        assert!(text.contains("\"llc\""));
    }
}
