//! Structured event tracing with a Chrome `trace_event` exporter.
//!
//! Event producers (PE pipelines, the scheduler loop, the memory system)
//! append [`TraceEvent`]s tagged with a *lane* id — one lane per PE plus
//! dedicated scheduler/memory lanes — and [`TraceLog::to_chrome_json`]
//! renders the whole log in the Chrome `trace_event` JSON format, which
//! loads directly in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! Timestamps are **simulated PE cycles**, emitted verbatim into the `ts`
//! field (which trace viewers display as microseconds): one viewer
//! microsecond equals one PE cycle at 0.8 GHz. This keeps traces exactly
//! reproducible — no wall-clock values appear anywhere in the output, so a
//! trace can be golden-file checked byte for byte.

use crate::json::JsonValue;
use crate::telemetry::TelemetrySeries;
use crate::Cycle;

/// Process id used for every emitted event; the trace models one simulated
/// chip, so a single process groups all lanes in the viewer.
pub const TRACE_PID: u64 = 1;

/// How an event maps onto the `trace_event` phase model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span with a known duration (`ph: "X"`).
    Complete {
        /// Span length in cycles.
        dur: Cycle,
    },
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`); its args hold the series
    /// values.
    Counter,
}

/// One trace event: a span, instant, or counter sample on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name shown in the viewer (e.g. `tile 3`).
    pub name: String,
    /// Category tag, used by viewers for filtering (e.g. `tile`,
    /// `barrier`, `fault`).
    pub cat: &'static str,
    /// Start cycle.
    pub ts: Cycle,
    /// Lane (rendered as a thread) this event belongs to.
    pub tid: u64,
    /// Span / instant / counter.
    pub phase: TracePhase,
    /// Event arguments, shown in the viewer's detail pane.
    pub args: Vec<(&'static str, JsonValue)>,
}

impl TraceEvent {
    /// A span event covering `[ts, ts + dur)`.
    pub fn complete(
        name: impl Into<String>,
        cat: &'static str,
        ts: Cycle,
        dur: Cycle,
        tid: u64,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            cat,
            ts,
            tid,
            phase: TracePhase::Complete { dur },
            args: Vec::new(),
        }
    }

    /// An instant event at `ts`.
    pub fn instant(name: impl Into<String>, cat: &'static str, ts: Cycle, tid: u64) -> Self {
        TraceEvent {
            name: name.into(),
            cat,
            ts,
            tid,
            phase: TracePhase::Instant,
            args: Vec::new(),
        }
    }

    /// A counter sample at `ts`; the values are supplied via
    /// [`arg`](Self::arg).
    pub fn counter(name: impl Into<String>, ts: Cycle, tid: u64) -> Self {
        TraceEvent {
            name: name.into(),
            cat: "counter",
            ts,
            tid,
            phase: TracePhase::Counter,
            args: Vec::new(),
        }
    }

    /// Appends an argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<JsonValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("name".into(), self.name.as_str().into()),
            ("cat".into(), self.cat.into()),
            ("ts".into(), self.ts.into()),
            ("pid".into(), TRACE_PID.into()),
            ("tid".into(), self.tid.into()),
        ];
        match self.phase {
            TracePhase::Complete { dur } => {
                fields.push(("ph".into(), "X".into()));
                fields.push(("dur".into(), dur.into()));
            }
            TracePhase::Instant => {
                fields.push(("ph".into(), "i".into()));
                // Thread-scoped instant: renders as a marker on its lane.
                fields.push(("s".into(), "t".into()));
            }
            TracePhase::Counter => {
                fields.push(("ph".into(), "C".into()));
            }
        }
        if !self.args.is_empty() {
            fields.push((
                "args".into(),
                JsonValue::Object(
                    self.args
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), v.clone()))
                        .collect(),
                ),
            ));
        }
        JsonValue::Object(fields)
    }
}

/// An in-memory event log plus lane names, renderable as a Chrome
/// `trace_event` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Recorded events. Producers append in their own order;
    /// [`sort_by_time`](Self::sort_by_time) puts the log in canonical
    /// `(ts, tid)` order before export.
    pub events: Vec<TraceEvent>,
    lanes: Vec<(u64, String)>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Names a lane (rendered as a thread name in the viewer). Lanes are
    /// listed in registration order.
    pub fn set_lane(&mut self, tid: u64, name: impl Into<String>) {
        self.lanes.push((tid, name.into()));
    }

    /// Registered `(tid, name)` lanes.
    pub fn lanes(&self) -> &[(u64, String)] {
        &self.lanes
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of recorded events (metadata excluded).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Stable-sorts events by `(ts, tid)` so export order is canonical
    /// regardless of the order producer buffers were merged in.
    pub fn sort_by_time(&mut self) {
        self.events.sort_by_key(|e| (e.ts, e.tid));
    }

    /// Converts a telemetry series into counter tracks on `tid`:
    /// requests-per-cycle, DRAM bandwidth, in-flight reads, and active
    /// PEs, one sample per window at the window start. Viewed in Perfetto
    /// this reproduces the paper's Figure 10-style curves.
    pub fn add_telemetry(&mut self, series: &TelemetrySeries, tid: u64) {
        for s in &series.samples {
            self.push(
                TraceEvent::counter("requests/cycle", s.start, tid)
                    .arg("value", s.requests_per_cycle()),
            );
            self.push(TraceEvent::counter("dram GB/s", s.start, tid).arg("value", s.dram_gbps()));
            self.push(
                TraceEvent::counter("in-flight reads", s.start, tid)
                    .arg("value", s.in_flight_loads),
            );
            self.push(TraceEvent::counter("active PEs", s.start, tid).arg("value", s.active_pes));
        }
    }

    /// Renders the log as a Chrome `trace_event` JSON document:
    /// `{"traceEvents": [...], ...}` with process/thread-name metadata
    /// first, then events. Load the result in Perfetto or
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<JsonValue> =
            Vec::with_capacity(self.events.len() + self.lanes.len() + 1);
        events.push(metadata_event(
            "process_name",
            None,
            [("name", JsonValue::from("spade-sim"))],
        ));
        for (i, (tid, name)) in self.lanes.iter().enumerate() {
            events.push(metadata_event(
                "thread_name",
                Some(*tid),
                [("name", JsonValue::from(name.as_str()))],
            ));
            events.push(metadata_event(
                "thread_sort_index",
                Some(*tid),
                [("sort_index", JsonValue::from(i as u64))],
            ));
        }
        events.extend(self.events.iter().map(|e| e.to_json()));
        JsonValue::object([
            ("traceEvents", JsonValue::Array(events)),
            ("displayTimeUnit", "ms".into()),
            (
                "otherData",
                JsonValue::object([(
                    "clock",
                    JsonValue::from(
                        "ts is in simulated PE cycles (0.8 GHz); 1 viewer us = 1 cycle",
                    ),
                )]),
            ),
        ])
        .render()
    }
}

fn metadata_event(
    name: &str,
    tid: Option<u64>,
    args: impl IntoIterator<Item = (&'static str, JsonValue)>,
) -> JsonValue {
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("name".into(), name.into()),
        ("ph".into(), "M".into()),
        ("pid".into(), TRACE_PID.into()),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), tid.into()));
    }
    fields.push((
        "args".into(),
        JsonValue::Object(args.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
    ));
    JsonValue::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{TelemetrySample, TelemetrySeries};

    #[test]
    fn chrome_export_is_valid_json_with_metadata() {
        let mut log = TraceLog::new();
        log.set_lane(0, "PE 0");
        log.set_lane(1, "scheduler");
        log.push(TraceEvent::complete("tile 0", "tile", 5, 100, 0).arg("nnz", 32u64));
        log.push(TraceEvent::instant("barrier release", "barrier", 110, 1));
        let text = log.to_chrome_json();
        assert_eq!(crate::json::validate(&text), Ok(()));
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"dur\":100"));
        assert!(text.contains("\"ph\":\"i\""));
    }

    #[test]
    fn sort_is_canonical() {
        let mut log = TraceLog::new();
        log.push(TraceEvent::instant("b", "x", 10, 1));
        log.push(TraceEvent::instant("a", "x", 5, 2));
        log.push(TraceEvent::instant("c", "x", 5, 0));
        log.sort_by_time();
        let order: Vec<&str> = log.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(order, ["c", "a", "b"]);
    }

    #[test]
    fn telemetry_becomes_counter_tracks() {
        let series = TelemetrySeries {
            window: 8,
            samples: vec![TelemetrySample {
                start: 0,
                len: 8,
                requests: 16,
                ..TelemetrySample::default()
            }],
        };
        let mut log = TraceLog::new();
        log.add_telemetry(&series, 9);
        assert_eq!(log.len(), 4);
        let text = log.to_chrome_json();
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("requests/cycle"));
    }
}
