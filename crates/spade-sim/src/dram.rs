use crate::{gbps_to_bytes_per_cycle, Cycle, Line, LINE_BYTES};

/// DRAM configuration: channel count, bandwidth and idle latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels (requests interleave by line address).
    pub channels: usize,
    /// Aggregate *achievable* bandwidth in GB/s. The paper's system has a
    /// 410 GB/s theoretical maximum with 304 GB/s observed (Table 1); this
    /// field is the observed ceiling, i.e. the sustained service rate.
    pub bandwidth_gbps: f64,
    /// Idle access latency in PE cycles (row activation + CAS + transfer).
    pub latency_cycles: Cycle,
}

impl DramConfig {
    /// The dual-socket Ice Lake DRAM of Table 1: 8 channels, 304 GB/s
    /// observed, ~95 ns idle latency.
    pub fn ice_lake() -> Self {
        DramConfig {
            channels: 8,
            bandwidth_gbps: 304.0,
            latency_cycles: 76, // 95 ns at 0.8 GHz
        }
    }

    /// A scaled version: `factor`× channels and bandwidth (used by the
    /// SPADE2/4/8 scalability studies, §7.E).
    pub fn scaled_by(&self, factor: usize) -> Self {
        DramConfig {
            channels: self.channels * factor,
            bandwidth_gbps: self.bandwidth_gbps * factor as f64,
            latency_cycles: self.latency_cycles,
        }
    }
}

/// Multi-channel DRAM timing model.
///
/// Each channel is a bandwidth queue: a line transfer occupies the channel
/// for `LINE_BYTES / per-channel-bytes-per-cycle` cycles, and the request
/// completes one idle-latency after its service starts. Requests interleave
/// across channels by line address, like the paper's Sextans simulation
/// ("implement the address interleaving used by the authors", §6.A).
///
/// # Example
///
/// ```
/// use spade_sim::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::ice_lake());
/// let t = dram.access(0, 0);
/// assert!(t >= DramConfig::ice_lake().latency_cycles);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    service_cycles_x1024: u64,
    next_free: Vec<Cycle>,
    reads: u64,
    writes: u64,
    busy_cycles_x1024: u64,
}

impl Dram {
    /// Creates an idle DRAM model.
    pub fn new(config: DramConfig) -> Self {
        let per_channel = gbps_to_bytes_per_cycle(config.bandwidth_gbps) / config.channels as f64;
        // Fixed-point (×1024) service time per line per channel.
        let service = (LINE_BYTES as f64 / per_channel * 1024.0).round() as u64;
        Dram {
            config,
            service_cycles_x1024: service.max(1),
            next_free: vec![0; config.channels],
            reads: 0,
            writes: 0,
            busy_cycles_x1024: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Issues a read of `line` arriving at the controller at `now`; returns
    /// the completion cycle.
    #[inline]
    pub fn access(&mut self, line: Line, now: Cycle) -> Cycle {
        self.reads += 1;
        self.schedule(line, now)
    }

    /// Issues a write of `line` (write-back) arriving at `now`; returns the
    /// cycle at which the channel accepted it.
    #[inline]
    pub fn write(&mut self, line: Line, now: Cycle) -> Cycle {
        self.writes += 1;
        self.schedule(line, now)
    }

    /// Branch-free channel scheduling: the free-channel case is the same
    /// arithmetic as the queued case (`max` folds to a conditional move),
    /// so the common idle-DRAM access takes no extra branches.
    #[inline]
    fn schedule(&mut self, line: Line, now: Cycle) -> Cycle {
        let ch = (line % self.config.channels as u64) as usize;
        let start = self.next_free[ch].max(now);
        // Track occupancy in fixed point, then round the channel-free time.
        let busy_end_x1024 = start * 1024 + self.service_cycles_x1024;
        self.next_free[ch] = busy_end_x1024.div_ceil(1024);
        self.busy_cycles_x1024 += self.service_cycles_x1024;
        start + self.config.latency_cycles
    }

    /// Total line reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total line writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Achieved bandwidth in GB/s over `elapsed` cycles.
    pub fn achieved_gbps(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let bytes = self.accesses() as f64 * LINE_BYTES as f64;
        bytes / elapsed as f64 * crate::PE_GHZ
    }

    /// Fraction of the configured bandwidth actually used over `elapsed`
    /// cycles.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        (self.busy_cycles_x1024 as f64 / 1024.0) / (elapsed as f64 * self.config.channels as f64)
    }

    /// Resets counters and queues (for reuse across experiment phases).
    pub fn reset(&mut self) {
        self.next_free.fill(0);
        self.reads = 0;
        self.writes = 0;
        self.busy_cycles_x1024 = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig {
            channels: 2,
            bandwidth_gbps: 102.4, // 128 B/cycle -> 64 B/cycle/channel -> 1 cycle/line
            latency_cycles: 100,
        }
    }

    #[test]
    fn idle_access_pays_latency_only() {
        let mut d = Dram::new(cfg());
        assert_eq!(d.access(0, 50), 150);
    }

    #[test]
    fn back_to_back_same_channel_queues() {
        let mut d = Dram::new(cfg());
        let t1 = d.access(0, 0); // channel 0, service starts at 0
        let t2 = d.access(2, 0); // channel 0 again, must wait 1 cycle
        assert_eq!(t1, 100);
        assert_eq!(t2, 101);
    }

    #[test]
    fn different_channels_do_not_contend() {
        let mut d = Dram::new(cfg());
        let t1 = d.access(0, 0);
        let t2 = d.access(1, 0); // channel 1
        assert_eq!(t1, t2);
    }

    #[test]
    fn counters_split_reads_and_writes() {
        let mut d = Dram::new(cfg());
        d.access(0, 0);
        d.write(1, 0);
        d.write(3, 0);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 2);
        assert_eq!(d.accesses(), 3);
    }

    #[test]
    fn achieved_bandwidth_reflects_traffic() {
        let mut d = Dram::new(cfg());
        for i in 0..100 {
            d.access(i, 0);
        }
        // 100 lines over 100 cycles at 0.8 GHz: 6400 B / 125 ns = 51.2 GB/s.
        let gbps = d.achieved_gbps(100);
        assert!((gbps - 51.2).abs() < 0.1, "gbps={gbps}");
    }

    #[test]
    fn utilization_is_bounded() {
        let mut d = Dram::new(cfg());
        for i in 0..1000 {
            d.access(i, 0);
        }
        let u = d.utilization(500);
        assert!(u > 0.9 && u <= 1.01, "u={u}");
    }

    #[test]
    fn saturated_channel_throughput_matches_config() {
        // Service time of 1 cycle per line per channel: after N requests to
        // one channel, the last completes ~N cycles after the first.
        let mut d = Dram::new(cfg());
        let mut last = 0;
        for i in 0..64 {
            last = d.access(i * 2, 0); // all on channel 0
        }
        assert_eq!(last, 100 + 63);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = Dram::new(cfg());
        d.access(0, 0);
        d.reset();
        assert_eq!(d.accesses(), 0);
        assert_eq!(d.access(0, 0), 100);
    }

    #[test]
    fn scaled_config_multiplies_channels_and_bandwidth() {
        let base = DramConfig::ice_lake();
        let s = base.scaled_by(2);
        assert_eq!(s.channels, 16);
        assert!((s.bandwidth_gbps - 608.0).abs() < 1e-9);
    }
}
