//! Cycle-level memory-system simulation substrate for the SPADE
//! reproduction.
//!
//! The SPADE paper evaluates the accelerator with SST + DRAMsim3
//! simulations (§6.A). This crate is the Rust stand-in for that substrate:
//! a timing model of the host multicore's memory system that both the
//! SPADE processing elements and the baseline CPU model issue requests
//! into.
//!
//! The model is *tag-only* and *completion-time based*: caches track tags,
//! dirty bits and LRU state (data values are computed functionally by the
//! callers), and every access returns the cycle at which its data arrives,
//! computed from hit/miss outcomes, link latencies and bandwidth queues at
//! the LLC banks and DRAM channels. Concurrency limits come from the finite
//! queues of the requesting pipelines, matching how the paper's
//! configuration study (Table 4) varies queue sizes rather than MSHR
//! counts.
//!
//! Components:
//!
//! * [`Cache`] — set-associative, write-back, LRU (used for PE L1s, the
//!   bypass-buffer victim cache, core L2s, and the LLC slices),
//! * [`Dram`] — multi-channel bandwidth/latency model,
//! * [`Stlb`] — secondary TLB with pinned pages (SPADE PEs can miss in the
//!   TLB but never page-fault, §4.1),
//! * [`MemorySystem`] — the full hierarchy: per-agent L1/BBF → shared L2
//!   per cluster → banked LLC → DRAM, with the cache-bypass paths and the
//!   link-latency knob (§7.B) and per-level statistics.
//!
//! # Example
//!
//! ```
//! use spade_sim::{MemConfig, MemorySystem, AccessPath, DataClass};
//!
//! let mut mem = MemorySystem::new(MemConfig::small_test(2));
//! // Agent 0 reads line 7 through its cache hierarchy: a cold miss.
//! let t1 = mem.read(0, 7, AccessPath::Cached, DataClass::CMatrix, 0);
//! // The same line again: an L1 hit, so it completes much faster.
//! let t2 = mem.read(0, 7, AccessPath::Cached, DataClass::CMatrix, t1);
//! assert!(t2 - t1 < t1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod cache;
mod config;
mod dram;
mod fault;
mod hierarchy;
pub mod json;
mod stats;
mod telemetry;
mod tlb;
mod trace;

pub use audit::{audit_enabled, ReadTracker};
pub use cache::{AccessOutcome, Cache, CacheConfig, SlotHandle, Victim};
pub use config::MemConfig;
pub use dram::{Dram, DramConfig};
pub use fault::FaultConfig;
pub use hierarchy::{fast_path_default, AccessPath, MemorySystem};
pub use json::{FrameError, FrameReader, JsonValue};
pub use stats::{DataClass, LevelKind, LevelStats, MemStats};
pub use telemetry::{
    level_name, TelemetryCounters, TelemetryGauges, TelemetryRecorder, TelemetrySample,
    TelemetrySeries,
};
pub use tlb::{Stlb, StlbConfig};
pub use trace::{TraceEvent, TraceLog, TracePhase, TRACE_PID};

/// Simulation time in SPADE PE cycles (0.8 GHz unless rescaled).
pub type Cycle = u64;

/// A cache-line address (byte address divided by the line size).
pub type Line = u64;

/// Bytes per cache line across the modeled system.
pub const LINE_BYTES: u64 = 64;

/// Default PE clock in GHz (Table 1).
pub const PE_GHZ: f64 = 0.8;

/// Converts nanoseconds to PE cycles at the default 0.8 GHz clock.
///
/// ```
/// assert_eq!(spade_sim::ns_to_cycles(60.0), 48);
/// ```
pub fn ns_to_cycles(ns: f64) -> Cycle {
    (ns * PE_GHZ).round() as Cycle
}

/// Converts PE cycles to nanoseconds at the default 0.8 GHz clock.
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 / PE_GHZ
}

/// Converts a gigabytes-per-second bandwidth into bytes per PE cycle.
///
/// ```
/// // 410 GB/s at 0.8 GHz is 512.5 B per cycle.
/// assert!((spade_sim::gbps_to_bytes_per_cycle(410.0) - 512.5).abs() < 1.0);
/// ```
pub fn gbps_to_bytes_per_cycle(gbps: f64) -> f64 {
    gbps / PE_GHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_roundtrip() {
        let cycles = ns_to_cycles(480.0);
        assert_eq!(cycles, 384);
        assert!((cycles_to_ns(cycles) - 480.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_conversion() {
        let bpc = gbps_to_bytes_per_cycle(304.0);
        assert!((bpc - 380.0).abs() < 0.1);
    }
}
