use crate::{
    audit_enabled, Cache, Cycle, DataClass, Dram, LevelKind, Line, MemConfig, MemStats,
    ReadTracker, SlotHandle, Stlb, TraceEvent, LINE_BYTES,
};

/// Which path an access takes through the memory system.
///
/// SPADE's bypass buffers (BBFs) let PE accesses skip the cache hierarchy
/// entirely (§5.2): sparse input data always bypasses, SDDMM output
/// bypasses, and the rMatrix may bypass — optionally staging its working
/// set in the BBF's small victim cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Through L1 → L2 → LLC → DRAM.
    Cached,
    /// Through the BBF straight to DRAM (no caching at any level).
    Bypass,
    /// Through the BBF, staging lines in its victim cache (the third
    /// rMatrix case of §5.2).
    BypassVictim,
}

/// Whether the memory fast path defaults to on for new hierarchies.
/// Setting `SPADE_MEM_SLOW_PATH` (to anything but `0`) forces every
/// [`MemorySystem`] onto the always-translate, always-lookup slow path —
/// the debugging escape hatch; [`MemorySystem::set_fast_path`] overrides
/// per instance. The two paths are bit-identical by construction (pinned
/// by the equivalence suites), so this only ever costs host time.
pub fn fast_path_default() -> bool {
    std::env::var_os("SPADE_MEM_SLOW_PATH").is_none_or(|v| v == *"0")
}

/// Per-agent memoization of the last line an agent left resident — and
/// most-recently-used — in its private L1 (`victim == false`) or BBF
/// victim cache (`victim == true`). A repeat access along the same path
/// is then serviced without touching the cache at all: the hit is known,
/// and re-touching an MRU way is a pure no-op under rank-based LRU.
#[derive(Debug, Clone, Copy)]
struct LineFilter {
    /// Filtered line; [`Line::MAX`] (the reserved sentinel) when empty.
    line: Line,
    /// Slot the line occupies, for O(1) dirty-marking on write repeats.
    slot: SlotHandle,
    /// Which private cache holds it: `false` = L1, `true` = BBF VC.
    victim: bool,
}

impl LineFilter {
    const EMPTY: LineFilter = LineFilter {
        line: Line::MAX,
        slot: 0,
        victim: false,
    };
}

/// The modeled memory hierarchy: per-agent L1 (and optional BBF victim
/// cache), shared L2 per cluster, banked LLC, DRAM, and per-cluster STLBs.
///
/// Every access returns its completion cycle. Caches are tag-only; victims
/// propagate down the hierarchy as write-backs that consume bandwidth but
/// stay off the requester's critical path.
///
/// # The fast path
///
/// With no fault plan armed, accesses flow through a filtered fast path
/// that is bit-identical to the slow path (see the memory-fast-path
/// section of `DESIGN.md` and the `fastpath_equivalence` suites):
///
/// * a per-cluster **translation-reuse latch** skips the STLB lookup when
///   a request touches the same page as the cluster's previous request —
///   the latched page is by construction resident and MRU in its STLB
///   set, so the skipped lookup could only have been a state-no-op hit;
/// * a per-agent **line filter** short-circuits back-to-back accesses to
///   the same line along the same private-cache path entirely (stats and
///   dirty bits advance exactly as the slow path would);
/// * the no-fault access arms are **monomorphized** (`ARMED = false`), so
///   fault-probe rolls and their trace branches vanish from the hot loop
///   instead of being re-tested per request.
///
/// Arming any fault probability vetoes the filters for that hierarchy
/// (mid-run STLB shoot-downs would invalidate the latch invariant), so
/// faulty runs take the slow path on both sides of any comparison.
///
/// # Example
///
/// ```
/// use spade_sim::{AccessPath, DataClass, MemConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(MemConfig::small_test(4));
/// let done = mem.read(1, 100, AccessPath::Bypass, DataClass::SparseIn, 0);
/// assert!(done > 0); // a bypass read always goes to DRAM
/// assert_eq!(mem.stats().dram_accesses(), 1);
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: MemConfig,
    l1s: Vec<Cache>,
    victims: Vec<Option<Cache>>,
    l2s: Vec<Cache>,
    llc: Cache,
    llc_bank_free: Vec<Cycle>,
    dram: Dram,
    stlbs: Vec<Stlb>,
    stats: MemStats,
    /// Whether the fast path was requested (default: on, unless the
    /// `SPADE_MEM_SLOW_PATH` environment override is set).
    fast_path: bool,
    /// Whether the filters actually run: requested *and* not vetoed by an
    /// armed fault plan.
    filters_on: bool,
    /// Per-agent last-line memo (consulted only when `filters_on`).
    line_filters: Vec<LineFilter>,
    /// Per-cluster last-translated page (consulted only when
    /// `filters_on`); [`Line::MAX`] when empty.
    page_filter: Vec<Line>,
    /// Accesses fully short-circuited by the line filter. Deliberately
    /// *not* part of [`MemStats`]: reports must stay byte-identical
    /// between fast-path-on and fast-path-off runs.
    filter_line_hits: u64,
    /// Translations served by the reuse latch (same caveat as above).
    filter_page_hits: u64,
    /// In-flight read accounting for the invariant auditor. `None` when
    /// auditing is off; bookkeeping only — never read by the timing model.
    tracker: Option<ReadTracker>,
    /// Fault-firing trace events, buffered when tracing is enabled.
    /// Observation only — never read by the timing model.
    trace: Option<Vec<TraceEvent>>,
    /// Reusable dirty-line buffer for [`MemorySystem::flush_agent`], so
    /// flush-heavy plans allocate nothing in steady state.
    flush_scratch: Vec<Line>,
}

impl MemorySystem {
    /// Builds an empty hierarchy from `config`.
    pub fn new(config: MemConfig) -> Self {
        let l1s = (0..config.num_agents)
            .map(|_| Cache::new(config.l1))
            .collect();
        let victims = (0..config.num_agents)
            .map(|_| config.victim.map(Cache::new))
            .collect();
        let l2s = (0..config.num_clusters())
            .map(|_| Cache::new(config.l2))
            .collect();
        let stlbs = (0..config.num_clusters())
            .map(|_| Stlb::new(config.stlb))
            .collect();
        let fast_path = fast_path_default();
        MemorySystem {
            llc: Cache::new(config.llc),
            llc_bank_free: vec![0; config.llc_banks.max(1)],
            dram: Dram::new(config.dram),
            l1s,
            victims,
            l2s,
            stlbs,
            stats: MemStats::new(),
            fast_path,
            filters_on: fast_path && !config.faults.is_active(),
            line_filters: vec![LineFilter::EMPTY; config.num_agents],
            page_filter: vec![Line::MAX; config.num_clusters()],
            filter_line_hits: 0,
            filter_page_hits: 0,
            tracker: audit_enabled().then(ReadTracker::new),
            trace: None,
            flush_scratch: Vec::new(),
            config,
        }
    }

    /// Requests or disables the filtered fast path. Disabling forces the
    /// always-translate, always-lookup slow path (for debugging and the
    /// equivalence suites); enabling takes effect only if no fault plan
    /// is armed. Both directions clear the filters, which is always safe:
    /// an empty filter merely routes the next access down the slow path.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
        self.filters_on = enabled && !self.config.faults.is_active();
        self.reset_filters();
    }

    /// Whether the filtered fast path is live (requested and not vetoed
    /// by an armed fault plan).
    pub fn fast_path_active(&self) -> bool {
        self.filters_on
    }

    /// Accesses fully short-circuited by the per-agent line filter.
    pub fn filter_line_hits(&self) -> u64 {
        self.filter_line_hits
    }

    /// Translations served by the per-cluster reuse latch instead of an
    /// STLB lookup.
    pub fn filter_page_hits(&self) -> u64 {
        self.filter_page_hits
    }

    fn reset_filters(&mut self) {
        self.line_filters.fill(LineFilter::EMPTY);
        self.page_filter.fill(Line::MAX);
    }

    /// Enables or disables event tracing. Enabling (re)starts an empty
    /// buffer; disabling drops any buffered events. Tracing never affects
    /// timing or statistics.
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace = enabled.then(Vec::new);
    }

    /// Takes the buffered trace events, leaving tracing enabled with an
    /// empty buffer if it was on. Events carry the issuing agent as their
    /// lane id.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        match self.trace.as_mut() {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The DRAM model (achieved bandwidth, access counts).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    fn cluster_of(&self, agent: usize) -> usize {
        agent / self.config.agents_per_cluster
    }

    /// Occupies an LLC bank and returns the service start cycle.
    #[inline]
    fn llc_bank(&mut self, line: Line, now: Cycle) -> Cycle {
        let b = (line % self.llc_bank_free.len() as u64) as usize;
        let start = self.llc_bank_free[b].max(now);
        self.llc_bank_free[b] = start + 1;
        start
    }

    /// Reads `line` for `agent` along `path`; returns the completion cycle.
    pub fn read(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
    ) -> Cycle {
        let done = self.access(agent, line, path, class, now, false);
        if let Some(t) = self.tracker.as_mut() {
            t.record(now, done);
        }
        done
    }

    /// Writes `line` for `agent` along `path`; returns the cycle at which
    /// the write is accepted (writes are posted — the requester does not
    /// wait for DRAM).
    pub fn write(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
    ) -> Cycle {
        self.access(agent, line, path, class, now, true)
    }

    fn access(
        &mut self,
        agent: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
        is_write: bool,
    ) -> Cycle {
        assert!(agent < self.config.num_agents, "agent {agent} out of range");
        self.stats.requests_issued += 1;
        let cluster = self.cluster_of(agent);
        if self.filters_on {
            return self.access_filtered(agent, cluster, line, path, class, now, is_write);
        }
        if self.config.faults.evicts_stlb(line, now) && self.stlbs[cluster].evict_line(line) {
            self.stats.faults_injected += 1;
            if let Some(buf) = self.trace.as_mut() {
                buf.push(
                    TraceEvent::instant("fault: stlb evict", "fault", now, agent as u64)
                        .arg("line", line),
                );
            }
        }
        let tlb_penalty = self.stlbs[cluster].translate(line);
        if tlb_penalty > 0 {
            self.stats.tlb_misses += 1;
        }
        self.dispatch::<true>(
            agent,
            cluster,
            line,
            path,
            class,
            now + tlb_penalty,
            is_write,
        )
    }

    /// The filtered fast path (fault plan proven inactive). Equivalence
    /// with the slow path is argued invariant-by-invariant in `DESIGN.md`
    /// and pinned by the `fastpath_equivalence` suites.
    #[allow(clippy::too_many_arguments)]
    fn access_filtered(
        &mut self,
        agent: usize,
        cluster: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
        is_write: bool,
    ) -> Cycle {
        let page = line * LINE_BYTES / self.config.stlb.page_bytes;
        if self.page_filter[cluster] == page {
            // The latched page is resident and MRU in its STLB set, so a
            // real translate() would hit and change nothing but the hit
            // counter — which note_reuse_hit advances. Penalty: 0.
            self.filter_page_hits += 1;
            self.stlbs[cluster].note_reuse_hit();
            let f = self.line_filters[agent];
            if f.line == line {
                // Same line, same path, same agent: the line is the MRU
                // way of the private cache that served it last time, so
                // the slow path would record a hit, promote a way that is
                // already MRU (a no-op under rank LRU), optionally mark it
                // dirty, and complete after one L1 latency.
                match (path, f.victim) {
                    (AccessPath::Cached, false) => {
                        self.filter_line_hits += 1;
                        self.stats.record_access(LevelKind::L1, true);
                        if is_write {
                            self.l1s[agent].mark_dirty_slot(f.slot);
                        }
                        return now + self.config.l1_latency;
                    }
                    (AccessPath::BypassVictim, true) => {
                        self.filter_line_hits += 1;
                        self.stats.record_access(LevelKind::Bbf, true);
                        if is_write {
                            self.victims[agent]
                                .as_mut()
                                .expect("a victim-filter entry implies a BBF")
                                .mark_dirty_slot(f.slot);
                        }
                        return now + self.config.l1_latency;
                    }
                    // Bypass never filters (DRAM channel queues must
                    // advance), and a path switch falls through to the
                    // full lookup.
                    _ => {}
                }
            }
            self.dispatch::<false>(agent, cluster, line, path, class, now, is_write)
        } else {
            let tlb_penalty = self.stlbs[cluster].translate(line);
            self.page_filter[cluster] = page;
            if tlb_penalty > 0 {
                self.stats.tlb_misses += 1;
            }
            self.dispatch::<false>(
                agent,
                cluster,
                line,
                path,
                class,
                now + tlb_penalty,
                is_write,
            )
        }
    }

    /// Routes a translated access down its path. `ARMED` selects the
    /// fault-probing arms; the fast path instantiates `ARMED = false`, so
    /// the per-request probability rolls and their trace branches are
    /// compiled out rather than re-tested (they are exact no-ops whenever
    /// the plan is inactive, which `filters_on` guarantees).
    #[allow(clippy::too_many_arguments)]
    fn dispatch<const ARMED: bool>(
        &mut self,
        agent: usize,
        cluster: usize,
        line: Line,
        path: AccessPath,
        class: DataClass,
        now: Cycle,
        is_write: bool,
    ) -> Cycle {
        match path {
            AccessPath::Cached => {
                self.cached_access::<ARMED>(agent, cluster, line, class, now, is_write)
            }
            AccessPath::Bypass => {
                self.stats.record_access(LevelKind::Bbf, false);
                if is_write {
                    // Posted write: the BBF accepts it immediately and
                    // drains it to DRAM in the background.
                    self.dram_write(line, class, now);
                    now + 1
                } else {
                    self.dram_read::<ARMED>(agent, line, class, now)
                }
            }
            AccessPath::BypassVictim => {
                self.victim_access::<ARMED>(agent, line, class, now, is_write)
            }
        }
    }

    fn cached_access<const ARMED: bool>(
        &mut self,
        agent: usize,
        cluster: usize,
        line: Line,
        class: DataClass,
        now: Cycle,
        is_write: bool,
    ) -> Cycle {
        let now = if ARMED {
            let port_extra = self.config.faults.port_extra(agent, line, now);
            if port_extra > 0 {
                self.stats.faults_injected += 1;
                if let Some(buf) = self.trace.as_mut() {
                    buf.push(
                        TraceEvent::instant("fault: port delay", "fault", now, agent as u64)
                            .arg("extra_cycles", port_extra),
                    );
                }
            }
            now + port_extra
        } else {
            now
        };
        let (l1_lat, l2_lat, llc_lat, link) = (
            self.config.l1_latency,
            self.config.l2_latency,
            self.config.llc_latency,
            self.config.link_latency,
        );
        let l1_done = now + l1_lat;
        let (outcome, slot) = self.l1s[agent].access_at(line, is_write);
        // The line is now resident and MRU in this agent's L1 whatever the
        // outcome was — exactly what the line filter memoizes.
        self.line_filters[agent] = LineFilter {
            line,
            slot,
            victim: false,
        };
        self.stats.record_access(LevelKind::L1, outcome.is_hit());
        if let crate::AccessOutcome::Miss { victim: Some(v) } = outcome {
            if v.dirty {
                self.stats.record_writeback(LevelKind::L1);
                self.fill_l2(cluster, v.line, class, now, true);
            }
        }
        if outcome.is_hit() {
            return l1_done;
        }

        // L2 lookup.
        let l2_done = l1_done + l2_lat;
        let l2_out = self.l2s[cluster].access(line, false);
        self.stats.record_access(LevelKind::L2, l2_out.is_hit());
        if let crate::AccessOutcome::Miss { victim: Some(v) } = l2_out {
            if v.dirty {
                self.stats.record_writeback(LevelKind::L2);
                self.fill_llc(v.line, class, now, true);
            }
        }
        if l2_out.is_hit() {
            return l2_done;
        }

        // LLC lookup (half the link round-trip gets us to the slice).
        let bank_start = self.llc_bank(line, l2_done + link / 2);
        let llc_done = bank_start + llc_lat;
        let llc_out = self.llc.access(line, false);
        self.stats.record_access(LevelKind::Llc, llc_out.is_hit());
        if let crate::AccessOutcome::Miss { victim: Some(v) } = llc_out {
            if v.dirty {
                self.stats.record_writeback(LevelKind::Llc);
                self.dram_write(v.line, class, now);
            }
        }
        if llc_out.is_hit() {
            return llc_done;
        }

        // DRAM (the remaining half of the link round trip).
        self.dram_read::<ARMED>(agent, line, class, llc_done + link / 2)
    }

    /// Fills `line` into an L2 as a write-back from an L1 (off the critical
    /// path).
    fn fill_l2(&mut self, cluster: usize, line: Line, class: DataClass, now: Cycle, dirty: bool) {
        let out = self.l2s[cluster].access(line, dirty);
        self.stats.record_access(LevelKind::L2, out.is_hit());
        if let crate::AccessOutcome::Miss { victim: Some(v) } = out {
            if v.dirty {
                self.stats.record_writeback(LevelKind::L2);
                self.fill_llc(v.line, class, now, true);
            }
        }
    }

    /// Fills `line` into the LLC as a write-back from an L2.
    fn fill_llc(&mut self, line: Line, class: DataClass, now: Cycle, dirty: bool) {
        let out = self.llc.access(line, dirty);
        self.stats.record_access(LevelKind::Llc, out.is_hit());
        if let crate::AccessOutcome::Miss { victim: Some(v) } = out {
            if v.dirty {
                self.stats.record_writeback(LevelKind::Llc);
                self.dram_write(v.line, class, now);
            }
        }
    }

    fn victim_access<const ARMED: bool>(
        &mut self,
        agent: usize,
        line: Line,
        class: DataClass,
        now: Cycle,
        is_write: bool,
    ) -> Cycle {
        let (out, slot) = match self.victims[agent].as_mut() {
            Some(vc) => vc.access_at(line, is_write),
            None => {
                // No BBF configured (CPU agent): degrade to a plain bypass.
                // The line filter is untouched — this access did not alter
                // any private cache, so the previous memo stays valid.
                return if is_write {
                    self.dram_write(line, class, now);
                    now + 1
                } else {
                    self.dram_read::<ARMED>(agent, line, class, now)
                };
            }
        };
        // Write-allocate on every miss: the line is resident and MRU in
        // the VC from here on, so memoize it for the filter.
        self.line_filters[agent] = LineFilter {
            line,
            slot,
            victim: true,
        };
        self.stats.record_access(LevelKind::Bbf, out.is_hit());
        if let crate::AccessOutcome::Miss { victim: Some(v) } = out {
            if v.dirty {
                self.stats.record_writeback(LevelKind::Bbf);
                self.dram_write(v.line, class, now);
            }
        }
        if out.is_hit() {
            return now + self.config.l1_latency;
        }
        if is_write {
            // Write-allocate in the VC; the line is dirty there, nothing
            // else to do now.
            now + self.config.l1_latency
        } else {
            self.dram_read::<ARMED>(agent, line, class, now)
        }
    }

    fn dram_read<const ARMED: bool>(
        &mut self,
        agent: usize,
        line: Line,
        class: DataClass,
        now: Cycle,
    ) -> Cycle {
        self.stats.record_access(LevelKind::Dram, true);
        self.stats.record_dram(class);
        let done = self.dram.access(line, now + self.config.link_latency / 2);
        let extra = if ARMED {
            let extra = self.config.faults.dram_extra(line, now);
            if extra > 0 {
                self.stats.faults_injected += 1;
                if let Some(buf) = self.trace.as_mut() {
                    buf.push(
                        TraceEvent::instant("fault: dram delay", "fault", now, agent as u64)
                            .arg("extra_cycles", extra),
                    );
                }
            }
            extra
        } else {
            0
        };
        done + extra + self.config.link_latency / 2
    }

    fn dram_write(&mut self, line: Line, class: DataClass, now: Cycle) {
        self.stats.record_access(LevelKind::Dram, true);
        self.stats.record_dram(class);
        let _ = self.dram.write(line, now + self.config.link_latency / 2);
    }

    /// Writes back and invalidates one agent's L1 and BBF victim cache,
    /// returning the number of dirty lines flushed (the SPADE→CPU mode
    /// transition of §4.1). The write-backs consume DRAM bandwidth.
    pub fn flush_agent(&mut self, agent: usize, now: Cycle) -> usize {
        // The agent's private caches are about to empty; its memoized line
        // is no longer resident anywhere.
        self.line_filters[agent] = LineFilter::EMPTY;
        let cluster = self.cluster_of(agent);
        let mut flushed = 0;
        // Reuse one buffer across all flushes; the borrow checker needs it
        // detached from `self` while the write-backs propagate.
        let mut scratch = std::mem::take(&mut self.flush_scratch);
        scratch.clear();
        self.l1s[agent].writeback_invalidate_all_into(&mut scratch);
        for &line in &scratch {
            self.stats.record_writeback(LevelKind::L1);
            self.fill_l2(cluster, line, DataClass::RMatrix, now, true);
            flushed += 1;
        }
        scratch.clear();
        if let Some(vc) = self.victims[agent].as_mut() {
            vc.writeback_invalidate_all_into(&mut scratch);
        }
        for &line in &scratch {
            self.stats.record_writeback(LevelKind::Bbf);
            self.dram_write(line, DataClass::RMatrix, now);
            flushed += 1;
        }
        scratch.clear();
        self.flush_scratch = scratch;
        flushed
    }

    /// Flushes every agent (end of a SPADE-mode section). Returns total
    /// dirty lines flushed.
    pub fn flush_all(&mut self, now: Cycle) -> usize {
        (0..self.config.num_agents)
            .map(|a| self.flush_agent(a, now))
            .sum()
    }

    /// Resets statistics and all timing queues while keeping cache
    /// contents, so a subsequent run starts at cycle 0 with warm caches
    /// (used to measure the start-up overhead of §7.D). The fast-path
    /// filters are cleared too — conservative, since cache contents
    /// survive, but an empty filter is always safe and keeps warm-start
    /// runs independent of pre-reset traffic.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::new();
        self.dram.reset();
        self.llc_bank_free.fill(0);
        self.reset_filters();
        self.filter_line_hits = 0;
        self.filter_page_hits = 0;
        if let Some(t) = self.tracker.as_mut() {
            t.reset();
        }
    }

    /// Whether the invariant auditor is tracking this hierarchy (debug
    /// builds, or `SPADE_AUDIT` set in release builds).
    pub fn audit_active(&self) -> bool {
        self.tracker.is_some()
    }

    /// Reads still in flight at `now`, when the auditor is active.
    pub fn outstanding_reads(&mut self, now: Cycle) -> Option<usize> {
        self.tracker.as_mut().map(|t| {
            t.retire(now);
            t.outstanding()
        })
    }

    /// Runs the hierarchy-level invariant checks at `now`:
    ///
    /// * every cache's occupancy stays within its configured geometry,
    /// * per-level hit counters never exceed access counters,
    /// * outstanding reads stay at or below `max_outstanding` when a bound
    ///   is given (the MSHR-leak check — the bound is the requesters'
    ///   aggregate queue capacity, which the host system knows).
    ///
    /// A no-op returning `Ok(())` when the auditor is inactive.
    pub fn audit(&mut self, now: Cycle, max_outstanding: Option<usize>) -> Result<(), String> {
        if self.tracker.is_none() {
            return Ok(());
        }
        for (name, cache) in self
            .l1s
            .iter()
            .map(|c| ("L1", c))
            .chain(self.victims.iter().flatten().map(|c| ("BBF", c)))
            .chain(self.l2s.iter().map(|c| ("L2", c)))
            .chain(std::iter::once(("LLC", &self.llc)))
        {
            let (occ, cap) = (cache.occupancy(), cache.config().num_lines());
            if occ > cap {
                return Err(format!("{name} occupancy {occ} exceeds capacity {cap}"));
            }
        }
        for level in LevelKind::ALL {
            let s = self.stats.level(level);
            if s.hits > s.accesses {
                return Err(format!(
                    "{level:?} hits {} > accesses {}",
                    s.hits, s.accesses
                ));
            }
        }
        // The filters are observation-transparent; their own counters must
        // stay within the request count like any hit counter.
        if self.filter_line_hits > self.stats.requests_issued
            || self.filter_page_hits > self.stats.requests_issued
        {
            return Err(format!(
                "filter hit counters exceed requests issued: line {} / page {} > {}",
                self.filter_line_hits, self.filter_page_hits, self.stats.requests_issued
            ));
        }
        let outstanding = self.outstanding_reads(now).unwrap_or(0);
        if let Some(bound) = max_outstanding {
            if outstanding > bound {
                return Err(format!(
                    "in-flight read leak: {outstanding} outstanding at cycle {now}, bound {bound}"
                ));
            }
        }
        Ok(())
    }

    /// End-of-run audit: the periodic checks plus the requirement that all
    /// in-flight reads have drained (`now` is the final cycle).
    pub fn audit_final(&mut self, now: Cycle) -> Result<(), String> {
        self.audit(now, None)?;
        match self.outstanding_reads(now) {
            Some(n) if n > 0 => Err(format!(
                "in-flight read leak: {n} reads still outstanding at final cycle {now}"
            )),
            _ => Ok(()),
        }
    }

    /// Direct access to an agent's L1 occupancy (for tests/diagnostics).
    pub fn l1_occupancy(&self, agent: usize) -> usize {
        self.l1s[agent].occupancy()
    }

    /// Direct access to the LLC occupancy (for tests/diagnostics).
    pub fn llc_occupancy(&self) -> usize {
        self.llc.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::small_test(4))
    }

    #[test]
    fn cold_read_reaches_dram() {
        let mut m = mem();
        let done = m.read(0, 10, AccessPath::Cached, DataClass::CMatrix, 0);
        assert_eq!(m.stats().dram_accesses(), 1);
        assert!(done > m.config().dram.latency_cycles);
    }

    #[test]
    fn second_read_hits_l1() {
        let mut m = mem();
        let t1 = m.read(0, 10, AccessPath::Cached, DataClass::CMatrix, 0);
        let t2 = m.read(0, 10, AccessPath::Cached, DataClass::CMatrix, t1);
        assert_eq!(t2 - t1, m.config().l1_latency);
        assert_eq!(m.stats().dram_accesses(), 1);
    }

    #[test]
    fn sibling_agent_hits_shared_l2() {
        let mut m = mem();
        // Agents 0 and 1 share a cluster (agents_per_cluster = 2).
        let t1 = m.read(0, 10, AccessPath::Cached, DataClass::CMatrix, 0);
        let t2 = m.read(1, 10, AccessPath::Cached, DataClass::CMatrix, t1);
        let cfg = m.config();
        assert_eq!(t2 - t1, cfg.l1_latency + cfg.l2_latency);
    }

    #[test]
    fn cross_cluster_agent_hits_llc() {
        let mut m = mem();
        let t1 = m.read(0, 10, AccessPath::Cached, DataClass::CMatrix, 0);
        let t2 = m.read(2, 10, AccessPath::Cached, DataClass::CMatrix, t1);
        // L1 + L2 misses, LLC hit: more than an L2 hit, less than DRAM.
        let cfg = m.config();
        assert!(t2 - t1 > cfg.l1_latency + cfg.l2_latency);
        assert_eq!(m.stats().dram_accesses(), 1);
    }

    #[test]
    fn bypass_read_never_fills_caches() {
        let mut m = mem();
        m.read(0, 10, AccessPath::Bypass, DataClass::SparseIn, 0);
        m.read(0, 10, AccessPath::Bypass, DataClass::SparseIn, 0);
        assert_eq!(m.stats().dram_accesses(), 2);
        assert_eq!(m.l1_occupancy(0), 0);
        assert_eq!(m.llc_occupancy(), 0);
    }

    #[test]
    fn bypass_write_is_posted() {
        let mut m = mem();
        // Warm the TLB so the posted write pays no walk penalty.
        m.read(0, 10, AccessPath::Bypass, DataClass::SparseIn, 0);
        let t = m.write(0, 10, AccessPath::Bypass, DataClass::SparseOut, 5);
        assert_eq!(t, 6);
        assert_eq!(m.stats().dram_accesses(), 2);
    }

    #[test]
    fn victim_cache_stages_bypassed_lines() {
        let mut m = mem();
        let t1 = m.read(0, 10, AccessPath::BypassVictim, DataClass::RMatrix, 0);
        let t2 = m.read(0, 10, AccessPath::BypassVictim, DataClass::RMatrix, t1);
        assert_eq!(t2 - t1, m.config().l1_latency); // VC hit
        assert_eq!(m.stats().dram_accesses(), 1);
        assert_eq!(m.l1_occupancy(0), 0); // L1 untouched
    }

    #[test]
    fn victim_cache_overflow_spills_dirty_lines_to_dram() {
        let mut m = mem();
        // VC is 256 B = 4 lines; write 8 distinct lines.
        for i in 0..8 {
            m.write(0, i, AccessPath::BypassVictim, DataClass::RMatrix, 0);
        }
        // 4 dirty victims must have spilled.
        assert_eq!(m.stats().level(LevelKind::Bbf).writebacks, 4);
        assert_eq!(m.stats().dram_accesses(), 4);
    }

    #[test]
    fn dirty_l1_victims_propagate_to_l2() {
        let mut m = mem();
        // L1 is 512 B = 8 lines, 2-way, 4 sets; lines k*4 collide in set 0.
        m.write(0, 0, AccessPath::Cached, DataClass::RMatrix, 0);
        m.write(0, 4, AccessPath::Cached, DataClass::RMatrix, 0);
        m.write(0, 8, AccessPath::Cached, DataClass::RMatrix, 0); // evicts line 0
        assert_eq!(m.stats().level(LevelKind::L1).writebacks, 1);
    }

    #[test]
    fn writes_after_flush_are_visible_in_dram_counts() {
        let mut m = mem();
        m.write(0, 1, AccessPath::Cached, DataClass::RMatrix, 0);
        let flushed = m.flush_agent(0, 100);
        assert_eq!(flushed, 1);
        assert_eq!(m.l1_occupancy(0), 0);
    }

    #[test]
    fn repeated_flushes_of_clean_caches_change_nothing() {
        let mut m = mem();
        m.write(0, 1, AccessPath::Cached, DataClass::RMatrix, 0);
        m.write(1, 2, AccessPath::BypassVictim, DataClass::RMatrix, 0);
        assert_eq!(m.flush_agent(0, 10) + m.flush_agent(1, 10), 2);
        let baseline = m.stats().clone();
        // Flush-heavy plan with nothing dirty: every subsequent flush must
        // take the fast path and leave the statistics bit-identical.
        for round in 0..64 {
            assert_eq!(m.flush_all(20 + round), 0);
        }
        assert_eq!(*m.stats(), baseline);
        assert_eq!(m.l1_occupancy(0), 0);
    }

    #[test]
    fn flush_all_covers_every_agent() {
        let mut m = mem();
        m.write(0, 1, AccessPath::Cached, DataClass::RMatrix, 0);
        m.write(3, 2, AccessPath::Cached, DataClass::RMatrix, 0);
        m.write(2, 3, AccessPath::BypassVictim, DataClass::RMatrix, 0);
        assert_eq!(m.flush_all(50), 3);
    }

    #[test]
    fn tlb_miss_penalty_is_applied_once_per_page() {
        let mut m = mem();
        let t1 = m.read(0, 0, AccessPath::Cached, DataClass::CMatrix, 0);
        // Line 1 is in the same 4 KiB page: no walk, and it is an L1 miss
        // with the same path length, so it must complete sooner relative to
        // its issue time minus DRAM queueing.
        let t2 = m.read(0, 1, AccessPath::Cached, DataClass::CMatrix, t1) - t1;
        assert!(t2 < t1);
        assert_eq!(m.stats().tlb_misses, 1);
    }

    #[test]
    fn requests_issued_counts_every_access() {
        let mut m = mem();
        m.read(0, 0, AccessPath::Cached, DataClass::CMatrix, 0);
        m.write(0, 1, AccessPath::Bypass, DataClass::SparseOut, 0);
        assert_eq!(m.stats().requests_issued, 2);
    }

    #[test]
    fn link_latency_increases_dram_time() {
        let mut fast = MemorySystem::new(MemConfig::small_test(2));
        let mut slow_cfg = MemConfig::small_test(2);
        slow_cfg.link_latency = 768; // 960 ns
        let mut slow = MemorySystem::new(slow_cfg);
        let tf = fast.read(0, 0, AccessPath::Bypass, DataClass::SparseIn, 0);
        let ts = slow.read(0, 0, AccessPath::Bypass, DataClass::SparseIn, 0);
        assert!(ts > tf + 600);
    }

    #[test]
    fn zero_probability_plan_is_a_no_op() {
        use crate::FaultConfig;
        let mut clean = mem();
        let mut cfg = MemConfig::small_test(4);
        cfg.faults = FaultConfig {
            seed: 99,
            ..FaultConfig::none()
        };
        let mut armed = MemorySystem::new(cfg);
        for i in 0..64u64 {
            let agent = (i % 4) as usize;
            let a = clean.read(agent, i * 3, AccessPath::Cached, DataClass::CMatrix, i);
            let b = armed.read(agent, i * 3, AccessPath::Cached, DataClass::CMatrix, i);
            assert_eq!(a, b);
        }
        assert_eq!(clean.stats(), armed.stats());
        assert_eq!(armed.stats().faults_injected, 0);
    }

    #[test]
    fn stress_plan_fires_and_only_delays() {
        use crate::FaultConfig;
        let mut clean = mem();
        let mut cfg = MemConfig::small_test(4);
        cfg.faults = FaultConfig::stress(7);
        let mut armed = MemorySystem::new(cfg);
        let mut clean_sum = 0;
        let mut armed_sum = 0;
        for i in 0..512u64 {
            let agent = (i % 4) as usize;
            clean_sum += clean.read(agent, i * 5, AccessPath::Cached, DataClass::CMatrix, i);
            armed_sum += armed.read(agent, i * 5, AccessPath::Cached, DataClass::CMatrix, i);
        }
        assert!(armed.stats().faults_injected > 0);
        // Faults add latency; they never accelerate anything.
        assert!(armed_sum > clean_sum);
        // The same traffic was served either way.
        assert_eq!(clean.stats().requests_issued, armed.stats().requests_issued);
    }

    #[test]
    fn fault_plans_veto_the_fast_path() {
        use crate::FaultConfig;
        let clean = mem();
        assert!(clean.fast_path_active());
        let mut cfg = MemConfig::small_test(4);
        cfg.faults = FaultConfig::light(3);
        let armed = MemorySystem::new(cfg);
        assert!(!armed.fast_path_active());
    }

    #[test]
    fn set_fast_path_toggles_and_counts_stop() {
        let mut m = mem();
        m.read(0, 0, AccessPath::Cached, DataClass::CMatrix, 0);
        m.read(0, 0, AccessPath::Cached, DataClass::CMatrix, 0);
        assert!(m.filter_line_hits() > 0);
        let line_hits = m.filter_line_hits();
        m.set_fast_path(false);
        assert!(!m.fast_path_active());
        m.read(0, 0, AccessPath::Cached, DataClass::CMatrix, 0);
        assert_eq!(m.filter_line_hits(), line_hits);
        m.set_fast_path(true);
        assert!(m.fast_path_active());
    }

    #[test]
    fn filtered_and_slow_paths_agree_on_a_repeat_stream() {
        let mut fast = mem();
        let mut slow = mem();
        slow.set_fast_path(false);
        let mut now = 0;
        for i in 0..256u64 {
            let agent = (i % 4) as usize;
            let line = (i / 8) % 16; // heavy same-line, same-page reuse
            let path = if i % 3 == 0 {
                AccessPath::BypassVictim
            } else {
                AccessPath::Cached
            };
            let w = i % 5 == 0;
            let a = fast.access(agent, line, path, DataClass::RMatrix, now, w);
            let b = slow.access(agent, line, path, DataClass::RMatrix, now, w);
            assert_eq!(a, b, "op {i}");
            assert_eq!(fast.stats(), slow.stats(), "op {i}");
            now = a;
        }
        assert!(fast.filter_line_hits() > 0);
        assert!(fast.filter_page_hits() > 0);
        assert_eq!(slow.filter_line_hits(), 0);
    }

    #[test]
    fn audit_passes_on_a_healthy_hierarchy() {
        let mut m = mem();
        for i in 0..32u64 {
            m.read(
                (i % 4) as usize,
                i,
                AccessPath::Cached,
                DataClass::CMatrix,
                i,
            );
        }
        if m.audit_active() {
            assert_eq!(m.audit(u64::MAX / 2, Some(1000)), Ok(()));
            assert_eq!(m.audit_final(u64::MAX / 2), Ok(()));
        }
    }

    #[test]
    fn audit_flags_reads_exceeding_the_bound() {
        let mut m = mem();
        // A cold bypass read completes well after cycle 0.
        m.read(0, 0, AccessPath::Bypass, DataClass::SparseIn, 0);
        if m.audit_active() {
            assert!(m.audit(0, Some(0)).is_err());
            assert!(m.audit_final(0).is_err());
        }
    }

    #[test]
    fn agent_out_of_range_panics() {
        let mut m = mem();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.read(99, 0, AccessPath::Cached, DataClass::CMatrix, 0)
        }));
        assert!(r.is_err());
    }
}
