//! A hand-rolled, dependency-free JSON tree.
//!
//! The workspace deliberately carries no external crates (serde was pruned
//! in the dependency purge), so every machine-readable artifact — run
//! reports, telemetry series, Chrome traces — is built from this small
//! value type and rendered by its writer. The matching [`JsonValue::parse`]
//! deserializer and the [`validate`] syntax checker let tests, tooling and
//! the experiment daemon consume documents without any dependency, and
//! [`FrameReader`] turns a byte stream into newline-delimited frames with a
//! hard size cap — the wire format `spade-cli serve` speaks.

use std::fmt;
use std::io::Read;

/// A JSON value. Objects preserve insertion order, so rendered documents
/// are deterministic and diff-friendly (the trace golden-file check relies
/// on this).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (cycle counts, event counters).
    UInt(u64),
    /// A float. Non-finite values render as `null` — JSON has no NaN/Inf.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, rendered in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders this value into `out`.
    pub fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, i));
            }
            JsonValue::UInt(u) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, u));
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let mut buf = itoa_buffer();
                    out.push_str(write_display(&mut buf, f));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders this value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Parses one JSON document into a tree (whitespace-tolerant, nothing
    /// but whitespace allowed after the value).
    ///
    /// Numbers without a fraction or exponent become [`JsonValue::UInt`]
    /// (or [`JsonValue::Int`] when negative); everything else — and any
    /// integer too large for 64 bits — becomes [`JsonValue::Float`]. String
    /// escapes, including `\uXXXX` surrogate pairs, are decoded.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up `key` in an object (first match; emitted documents never
    /// repeat keys). `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a `u64`: `UInt` directly, or a non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as an `i64`: `Int` directly, or a `UInt` that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// This value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// This value as a `usize` (see [`JsonValue::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs in insertion order, if this is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Scratch buffer for integer/float rendering without a `format!`
/// allocation per number.
fn itoa_buffer() -> String {
    String::with_capacity(24)
}

fn write_display<'a>(buf: &'a mut String, v: &impl fmt::Display) -> &'a str {
    use fmt::Write as _;
    buf.clear();
    let _ = write!(buf, "{v}");
    buf.as_str()
}

/// Writes `s` as a JSON string literal into `out`.
fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `text` is one syntactically valid JSON document (with
/// nothing but whitespace after it). Returns the byte offset and a short
/// description on failure.
///
/// This is [`JsonValue::parse`] with the tree discarded — kept as the
/// lightweight call for tests and tooling that only care about
/// well-formedness.
///
/// # Errors
///
/// Returns `Err` with the byte offset of the first syntax error.
pub fn validate(text: &str) -> Result<(), String> {
    JsonValue::parse(text).map(drop)
}

/// Maximum nesting depth [`validate`] accepts; far above anything the
/// writers emit, but keeps the recursive parser stack-safe.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.expect_literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self
                .expect_literal("false")
                .map(|()| JsonValue::Bool(false)),
            Some(b'n') => self.expect_literal("null").map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'{');
        self.skip_ws();
        let mut pairs = Vec::new();
        if self.eat(b'}') {
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(JsonValue::Object(pairs));
            }
            return Err(self.err("expected ',' or '}'"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'[');
        self.skip_ws();
        let mut items = Vec::new();
        if self.eat(b']') {
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(JsonValue::Array(items));
            }
            return Err(self.err("expected ',' or ']'"));
        }
    }

    /// Four hex digits after a `\u`, as the code unit they name.
    fn hex4(&mut self) -> Result<u16, String> {
        let mut unit = 0u16;
        for _ in 0..4 {
            let Some(h) = self.peek().filter(u8::is_ascii_hexdigit) else {
                return Err(self.err("bad \\u escape"));
            };
            let digit = (h as char).to_digit(16).expect("hex digit");
            unit = unit << 4 | digit as u16;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn string(&mut self) -> Result<String, String> {
        if !self.eat(b'"') {
            return Err(self.err("expected '\"'"));
        }
        let start = self.pos;
        let mut out = String::new();
        // Raw (escape-free, ASCII-checked) spans are copied in one go; the
        // scan itself walks bytes, relying on UTF-8 continuation bytes all
        // being >= 0x80 so they never match the match arms below.
        let mut raw_from = start;
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    out.push_str(self.raw_span(raw_from)?);
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    out.push_str(self.raw_span(raw_from)?);
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let ch = match unit {
                                // A high surrogate must pair with a
                                // following \uDC00..DFFF low surrogate.
                                0xD800..=0xDBFF => {
                                    if !(self.eat(b'\\') && self.eat(b'u')) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let code = 0x10000
                                        + ((unit as u32 - 0xD800) << 10)
                                        + (low as u32 - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("surrogate pair outside Unicode"))?
                                }
                                0xDC00..=0xDFFF => return Err(self.err("unpaired surrogate")),
                                _ => char::from_u32(unit as u32)
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            };
                            out.push(ch);
                            raw_from = self.pos;
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                    raw_from = self.pos;
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => self.pos += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    /// The escape-free bytes from `from` to the cursor, checked valid
    /// UTF-8 (the input may be any byte slice at this layer).
    fn raw_span(&self, from: usize) -> Result<&str, String> {
        std::str::from_utf8(&self.bytes[from..self.pos])
            .map_err(|_| format!("invalid UTF-8 in string at byte {from}"))
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        let negative = self.eat(b'-');
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        // JSON forbids leading zeros ("01"): a zero integral part must
        // stand alone.
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(format!("leading zero at byte {digits_start}"));
        }
        let mut integral = true;
        if self.eat(b'.') {
            integral = false;
            let frac = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ASCII by construction");
        // Plain integers keep full 64-bit precision; fractions, exponents
        // and over-wide integers fall back to f64.
        if integral {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("unparsable number at byte {start}"))
    }
}

/// Default [`FrameReader`] frame cap: far above any legitimate request,
/// small enough that a hostile client cannot balloon the daemon's memory.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Why a [`FrameReader`] could not produce the next frame.
#[derive(Debug)]
pub enum FrameError {
    /// More than the configured cap arrived without a newline. The stream
    /// is unrecoverable at this point — close the connection.
    TooLong {
        /// The configured frame cap in bytes.
        limit: usize,
    },
    /// The stream ended mid-frame (bytes buffered, no final newline) — a
    /// client that died or dropped the connection between frames.
    Truncated {
        /// How many bytes of the unfinished frame had arrived.
        buffered: usize,
    },
    /// The underlying reader failed (includes read timeouts, surfaced as
    /// `WouldBlock`/`TimedOut`).
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            FrameError::Truncated { buffered } => {
                write!(f, "stream ended mid-frame ({buffered} bytes buffered)")
            }
            FrameError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Incremental newline-delimited frame reader — the wire format of the
/// experiment daemon (one JSON document per line).
///
/// Robustness properties the daemon depends on:
///
/// * **Bounded buffering.** A frame may arrive in arbitrarily small
///   pieces, but once more than the cap is buffered without a newline the
///   reader fails with [`FrameError::TooLong`] instead of growing without
///   limit.
/// * **Partial frames are detected.** EOF with buffered bytes is
///   [`FrameError::Truncated`], never a silently delivered half-frame.
/// * **Transport-agnostic.** Works over any [`Read`]; socket read
///   timeouts surface as [`FrameError::Io`].
///
/// Trailing `\r` is stripped (so `telnet`-style clients work); empty
/// lines come back as empty frames for the caller to skip.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Start of un-consumed bytes within `buf`.
    start: usize,
    max_frame: usize,
}

impl<R: Read> FrameReader<R> {
    /// A reader with the default [`MAX_FRAME_BYTES`] cap.
    pub fn new(inner: R) -> Self {
        Self::with_max_frame(inner, MAX_FRAME_BYTES)
    }

    /// A reader with an explicit frame cap (`>= 1`).
    pub fn with_max_frame(inner: R, max_frame: usize) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            start: 0,
            max_frame: max_frame.max(1),
        }
    }

    /// The next frame, without its newline: `Ok(Some(bytes))` per line,
    /// `Ok(None)` on a clean EOF at a frame boundary.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLong`] when the cap is exceeded,
    /// [`FrameError::Truncated`] on EOF mid-frame, [`FrameError::Io`] when
    /// the underlying read fails. After an error the stream should be
    /// dropped — frame synchronization is lost.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        loop {
            if let Some(nl) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                // The cap applies even when the whole oversized line is
                // already buffered (e.g. it arrived in one read): a frame
                // past the limit is an error, not a delivery.
                if nl > self.max_frame {
                    return Err(FrameError::TooLong {
                        limit: self.max_frame,
                    });
                }
                let mut end = self.start + nl;
                let frame_start = self.start;
                self.start = end + 1;
                if self.buf[frame_start..end].last() == Some(&b'\r') {
                    end -= 1;
                }
                let frame = self.buf[frame_start..end].to_vec();
                // Reclaim consumed space once it dominates the buffer, so
                // a long-lived connection never accretes dead bytes.
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                } else if self.start > 8192 {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                return Ok(Some(frame));
            }
            if self.buf.len() - self.start > self.max_frame {
                return Err(FrameError::TooLong {
                    limit: self.max_frame,
                });
            }
            let mut chunk = [0u8; 8192];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                if self.buf.len() > self.start {
                    return Err(FrameError::Truncated {
                        buffered: self.buf.len() - self.start,
                    });
                }
                return Ok(None);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Int(-3).render(), "-3");
        assert_eq!(JsonValue::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(JsonValue::Float(0.5).render(), "0.5");
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert!(validate(&v.render()).is_ok());
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = JsonValue::object([("b", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn rendered_trees_validate() {
        let v = JsonValue::object([
            (
                "xs",
                JsonValue::Array(vec![1u64.into(), (-2i64).into(), 0.25.into()]),
            ),
            ("s", "nested \"quote\"".into()),
            ("none", JsonValue::Null),
            (
                "inner",
                JsonValue::object([("k", JsonValue::Array(vec![]))]),
            ),
        ]);
        assert_eq!(validate(&v.render()), Ok(()));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "nul",
            "{\"a\":1} extra",
            "1.",
            "1e",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validator_accepts_standard_documents() {
        for good in [
            "null",
            " [1, 2.5, -3e-2, \"x\", {\"k\": [true, false]}] ",
            "{\"a\": {\"b\": {\"c\": []}}}",
        ] {
            assert_eq!(validate(good), Ok(()), "rejected {good:?}");
        }
    }

    #[test]
    fn parse_builds_the_expected_tree() {
        let v = JsonValue::parse("{\"a\": [1, -2, 0.5, \"x\"], \"b\": null}").unwrap();
        assert_eq!(
            v,
            JsonValue::object([
                (
                    "a",
                    JsonValue::Array(vec![1u64.into(), (-2i64).into(), 0.5.into(), "x".into()])
                ),
                ("b", JsonValue::Null),
            ])
        );
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[_]>::len),
            Some(4)
        );
        assert_eq!(v.get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_decodes_escapes_and_surrogates() {
        let v = JsonValue::parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        for bad in [
            r#""\ud800""#,  // lone high surrogate
            r#""\ud800A""#, // high surrogate + non-surrogate
            r#""\udc00""#,  // lone low surrogate
            r#""\ux000""#,  // bad hex
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
        assert_eq!(
            JsonValue::parse("-9223372036854775808").unwrap(),
            JsonValue::Int(i64::MIN)
        );
        assert_eq!(JsonValue::parse("1.5e3").unwrap(), JsonValue::Float(1500.0));
        // Integers beyond 64 bits degrade to floats instead of failing.
        assert!(matches!(
            JsonValue::parse("184467440737095516160").unwrap(),
            JsonValue::Float(_)
        ));
        assert_eq!(JsonValue::Int(-3).as_i64(), Some(-3));
        assert_eq!(JsonValue::Int(-3).as_u64(), None);
        assert_eq!(JsonValue::UInt(7).as_i64(), Some(7));
        assert_eq!(JsonValue::UInt(7).as_f64(), Some(7.0));
        assert_eq!(JsonValue::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn parse_render_roundtrips() {
        let v = JsonValue::object([
            (
                "xs",
                JsonValue::Array(vec![1u64.into(), (-2i64).into(), 0.25.into()]),
            ),
            ("s", "nested \"quote\" and \u{1} control".into()),
            ("none", JsonValue::Null),
            ("flag", true.into()),
        ]);
        let text = v.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn frame_reader_splits_lines() {
        let mut r = FrameReader::new(&b"{\"a\":1}\r\nsecond\n\nlast\n"[..]);
        assert_eq!(r.next_frame().unwrap().as_deref(), Some(&b"{\"a\":1}"[..]));
        assert_eq!(r.next_frame().unwrap().as_deref(), Some(&b"second"[..]));
        assert_eq!(r.next_frame().unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(r.next_frame().unwrap().as_deref(), Some(&b"last"[..]));
        assert!(r.next_frame().unwrap().is_none());
        assert!(r.next_frame().unwrap().is_none(), "EOF is sticky");
    }

    #[test]
    fn frame_reader_reports_truncation() {
        let mut r = FrameReader::new(&b"complete\npart"[..]);
        assert_eq!(r.next_frame().unwrap().as_deref(), Some(&b"complete"[..]));
        match r.next_frame() {
            Err(FrameError::Truncated { buffered: 4 }) => {}
            other => panic!("expected Truncated {{4}}, got {other:?}"),
        }
    }

    #[test]
    fn frame_reader_caps_frame_length() {
        let long = [b'x'; 64];
        let mut r = FrameReader::with_max_frame(&long[..], 16);
        match r.next_frame() {
            Err(FrameError::TooLong { limit: 16 }) => {}
            other => panic!("expected TooLong {{16}}, got {other:?}"),
        }
        // A frame at the cap still gets through; the cap is about refusing
        // to buffer without bound, not about shrinking valid requests.
        let mut ok = vec![b'y'; 16];
        ok.push(b'\n');
        let mut r = FrameReader::with_max_frame(&ok[..], 16);
        assert_eq!(r.next_frame().unwrap().map(|f| f.len()), Some(16));
    }

    #[test]
    fn frame_reader_handles_split_reads() {
        // A reader that trickles one byte at a time: frames must reassemble.
        struct Trickle<'a>(&'a [u8]);
        impl Read for Trickle<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                match self.0.split_first() {
                    Some((&b, rest)) => {
                        out[0] = b;
                        self.0 = rest;
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
        }
        let mut r = FrameReader::new(Trickle(b"hello\nworld\n"));
        assert_eq!(r.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(r.next_frame().unwrap().as_deref(), Some(&b"world"[..]));
        assert!(r.next_frame().unwrap().is_none());
    }
}
