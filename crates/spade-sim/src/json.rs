//! A hand-rolled, dependency-free JSON tree.
//!
//! The workspace deliberately carries no external crates (serde was pruned
//! in the dependency purge), so every machine-readable artifact — run
//! reports, telemetry series, Chrome traces — is built from this small
//! value type and rendered by its writer. A matching [`validate`] parser
//! lets tests and tooling check emitted documents without any dependency.

use std::fmt;

/// A JSON value. Objects preserve insertion order, so rendered documents
/// are deterministic and diff-friendly (the trace golden-file check relies
/// on this).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (cycle counts, event counters).
    UInt(u64),
    /// A float. Non-finite values render as `null` — JSON has no NaN/Inf.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, rendered in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders this value into `out`.
    pub fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, i));
            }
            JsonValue::UInt(u) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, u));
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let mut buf = itoa_buffer();
                    out.push_str(write_display(&mut buf, f));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders this value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Scratch buffer for integer/float rendering without a `format!`
/// allocation per number.
fn itoa_buffer() -> String {
    String::with_capacity(24)
}

fn write_display<'a>(buf: &'a mut String, v: &impl fmt::Display) -> &'a str {
    use fmt::Write as _;
    buf.clear();
    let _ = write!(buf, "{v}");
    buf.as_str()
}

/// Writes `s` as a JSON string literal into `out`.
fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `text` is one syntactically valid JSON document (with
/// nothing but whitespace after it). Returns the byte offset and a short
/// description on failure.
///
/// This is a syntax checker, not a full deserializer: emitted artifacts are
/// verified well-formed without pulling in a JSON library.
///
/// # Errors
///
/// Returns `Err` with the byte offset of the first syntax error.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

/// Maximum nesting depth [`validate`] accepts; far above anything the
/// writers emit, but keeps the recursive parser stack-safe.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.expect_literal("true"),
            Some(b'f') => self.expect_literal("false"),
            Some(b'n') => self.expect_literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'{');
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(());
            }
            return Err(self.err("expected ',' or '}'"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'[');
        self.skip_ws();
        if self.eat(b']') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(());
            }
            return Err(self.err("expected ',' or ']'"));
        }
    }

    fn string(&mut self) -> Result<(), String> {
        if !self.eat(b'"') {
            return Err(self.err("expected '\"'"));
        }
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => match self.peek() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.pos += 1,
                    Some(b'u') => {
                        self.pos += 1;
                        for _ in 0..4 {
                            if !self.peek().is_some_and(|h| h.is_ascii_hexdigit()) {
                                return Err(self.err("bad \\u escape"));
                            }
                            self.pos += 1;
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {}
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        self.eat(b'-');
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.eat(b'.') {
            let frac = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Int(-3).render(), "-3");
        assert_eq!(JsonValue::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(JsonValue::Float(0.5).render(), "0.5");
        assert_eq!(JsonValue::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert!(validate(&v.render()).is_ok());
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = JsonValue::object([("b", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn rendered_trees_validate() {
        let v = JsonValue::object([
            (
                "xs",
                JsonValue::Array(vec![1u64.into(), (-2i64).into(), 0.25.into()]),
            ),
            ("s", "nested \"quote\"".into()),
            ("none", JsonValue::Null),
            (
                "inner",
                JsonValue::object([("k", JsonValue::Array(vec![]))]),
            ),
        ]);
        assert_eq!(validate(&v.render()), Ok(()));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "nul",
            "{\"a\":1} extra",
            "1.",
            "1e",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validator_accepts_standard_documents() {
        for good in [
            "null",
            " [1, 2.5, -3e-2, \"x\", {\"k\": [true, false]}] ",
            "{\"a\": {\"b\": {\"c\": []}}}",
        ] {
            assert_eq!(validate(good), Ok(()), "rejected {good:?}");
        }
    }
}
