use crate::{ns_to_cycles, CacheConfig, Cycle, DramConfig, FaultConfig, StlbConfig, LINE_BYTES};

/// Full memory-system configuration (the Table 1 parameters).
///
/// The same structure describes both the SPADE accelerator's view of the
/// host memory system (agents = PEs, four PEs per L2 cluster, bypass
/// buffers present) and the baseline CPU's view (agents = cores, one core
/// per L2, no bypass buffers).
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Number of requesting agents (SPADE PEs or CPU cores).
    pub num_agents: usize,
    /// Agents sharing one L2 cache and one STLB (4 for SPADE, 1 for CPU).
    pub agents_per_cluster: usize,
    /// Per-agent L1 data cache.
    pub l1: CacheConfig,
    /// Per-agent bypass-buffer victim cache, if the agent has a BBF
    /// (16 KiB, 2-way in Table 1). `None` for CPU cores.
    pub victim: Option<CacheConfig>,
    /// Per-cluster shared L2.
    pub l2: CacheConfig,
    /// Total last-level cache (shared by everyone, banked).
    pub llc: CacheConfig,
    /// Number of independent LLC banks (service rate: one line per cycle
    /// per bank).
    pub llc_banks: usize,
    /// Main memory.
    pub dram: DramConfig,
    /// Secondary TLB shared per cluster.
    pub stlb: StlbConfig,
    /// Average round-trip PE↔memory-controller link latency in cycles,
    /// excluding cache/DRAM service times (the LL knob of §7.B; 60 ns
    /// default).
    pub link_latency: Cycle,
    /// L1 hit latency in cycles.
    pub l1_latency: Cycle,
    /// Additional latency of an L2 lookup.
    pub l2_latency: Cycle,
    /// Additional latency of an LLC lookup.
    pub llc_latency: Cycle,
    /// Deterministic fault-injection plan (disabled by default).
    pub faults: FaultConfig,
}

impl MemConfig {
    /// The SPADE system of Table 1: `num_pes` PEs at 0.8 GHz, 32 KiB L1
    /// per PE, 16 KiB victim cache per PE, 1.25 MiB L2 per 4 PEs, 1.5 MiB
    /// of LLC per 4 PEs, and the dual-socket Ice Lake DRAM.
    ///
    /// With `num_pes = 224` this reproduces the paper's totals: 7.2 MiB of
    /// PE L1, 70 MiB of L2 and 84 MiB of LLC.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is not a multiple of 4.
    pub fn spade_table1(num_pes: usize) -> Self {
        assert!(num_pes.is_multiple_of(4), "SPADE clusters hold 4 PEs");
        let clusters = num_pes / 4;
        MemConfig {
            num_agents: num_pes,
            agents_per_cluster: 4,
            l1: CacheConfig::new(32 * 1024, 8),
            victim: Some(CacheConfig::new(16 * 1024, 2)),
            l2: CacheConfig::new(1_310_720, 20), // 1.25 MiB
            llc: CacheConfig::new(clusters * 1_572_864, 12), // 1.5 MiB per cluster
            llc_banks: clusters.max(1) * 2,
            dram: DramConfig::ice_lake(),
            stlb: StlbConfig::ice_lake(),
            link_latency: ns_to_cycles(60.0),
            l1_latency: 2,
            l2_latency: 14,
            llc_latency: 30,
            faults: FaultConfig::none(),
        }
    }

    /// A proportionally scaled SPADE system: LLC capacity and DRAM
    /// bandwidth shrink with the PE count so that the compute-to-memory
    /// balance of the 224-PE system is preserved. Useful for fast
    /// experiments and tests.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is not a multiple of 4.
    pub fn scaled(num_pes: usize) -> Self {
        let mut cfg = Self::spade_table1(num_pes);
        let ratio = num_pes as f64 / 224.0;
        cfg.dram.bandwidth_gbps = (304.0 * ratio).max(4.0);
        cfg.dram.channels = ((8.0 * ratio).round() as usize).max(1);
        cfg
    }

    /// The SPADE*n* scale-up of §7.E: `factor`× the PE count, DRAM
    /// bandwidth, LLC size *and link latency* of this configuration.
    pub fn scaled_up(&self, factor: usize) -> Self {
        let mut cfg = self.clone();
        cfg.num_agents *= factor;
        cfg.llc = CacheConfig::new(self.llc.size_bytes * factor, self.llc.ways);
        cfg.llc_banks *= factor;
        cfg.dram = self.dram.scaled_by(factor);
        cfg.link_latency *= factor as Cycle;
        cfg
    }

    /// The baseline dual-socket Ice Lake CPU of Table 1: 56 cores, 48 KiB
    /// L1D, 1.25 MiB private L2 per core, 84 MiB LLC, same DRAM.
    ///
    /// Latencies are expressed in *PE* cycles (0.8 GHz) so that CPU and
    /// SPADE timings share a time base; the CPU core model accounts for
    /// its higher clock internally.
    pub fn cpu_ice_lake(num_cores: usize) -> Self {
        MemConfig {
            num_agents: num_cores,
            agents_per_cluster: 1,
            l1: CacheConfig::new(48 * 1024, 12),
            victim: None,
            l2: CacheConfig::new(1_310_720, 20),
            llc: CacheConfig::new(num_cores * 1_572_864, 12),
            llc_banks: num_cores.max(1),
            dram: DramConfig::ice_lake(),
            stlb: StlbConfig::ice_lake(),
            link_latency: ns_to_cycles(60.0),
            l1_latency: 2,
            l2_latency: 14,
            llc_latency: 30,
            faults: FaultConfig::none(),
        }
    }

    /// A deliberately tiny hierarchy for unit tests: 512 B L1s, 2 KiB L2,
    /// 8 KiB LLC, 2 DRAM channels.
    pub fn small_test(num_agents: usize) -> Self {
        MemConfig {
            num_agents,
            agents_per_cluster: 2,
            l1: CacheConfig::new(512, 2),
            victim: Some(CacheConfig::new(256, 2)),
            l2: CacheConfig::new(2048, 4),
            llc: CacheConfig::new(8192, 4),
            llc_banks: 2,
            dram: DramConfig {
                channels: 2,
                bandwidth_gbps: 51.2,
                latency_cycles: 100,
            },
            stlb: StlbConfig {
                entries: 16,
                ways: 4,
                page_bytes: 4096,
                miss_penalty: 50,
            },
            link_latency: 48,
            l1_latency: 2,
            l2_latency: 14,
            llc_latency: 30,
            faults: FaultConfig::none(),
        }
    }

    /// Number of L2 clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_agents.div_ceil(self.agents_per_cluster)
    }

    /// Checks the configuration for values that would make the hierarchy
    /// panic or divide by zero when built or accessed. All fields are
    /// public, so a hand-assembled configuration can be arbitrarily
    /// malformed; callers that accept user input should validate before
    /// constructing a [`crate::MemorySystem`].
    pub fn validate(&self) -> Result<(), String> {
        if self.num_agents == 0 {
            return Err("num_agents must be at least 1".into());
        }
        if self.agents_per_cluster == 0 {
            return Err("agents_per_cluster must be at least 1".into());
        }
        for (name, cache) in [("l1", &self.l1), ("l2", &self.l2), ("llc", &self.llc)]
            .into_iter()
            .chain(self.victim.iter().map(|v| ("victim", v)))
        {
            if cache.ways == 0 {
                return Err(format!("{name} cache needs at least one way"));
            }
            if cache.size_bytes < cache.ways * LINE_BYTES as usize {
                return Err(format!(
                    "{name} cache of {} B cannot hold {} ways",
                    cache.size_bytes, cache.ways
                ));
            }
            if !cache.is_exact() {
                let set_bytes = cache.ways * LINE_BYTES as usize;
                return Err(format!(
                    "{name} cache of {} B is not a whole number of {}-way sets \
                     ({set_bytes} B each); the model would silently shrink it to {} B",
                    cache.size_bytes,
                    cache.ways,
                    cache.num_lines() * LINE_BYTES as usize
                ));
            }
        }
        if self.dram.channels == 0 {
            return Err("dram.channels must be at least 1".into());
        }
        if self.dram.bandwidth_gbps <= 0.0 {
            return Err("dram.bandwidth_gbps must be positive".into());
        }
        if self.stlb.ways == 0 || self.stlb.entries < self.stlb.ways {
            return Err(format!(
                "stlb needs entries >= ways >= 1 (got {} entries, {} ways)",
                self.stlb.entries, self.stlb.ways
            ));
        }
        if self.stlb.page_bytes < LINE_BYTES {
            return Err(format!(
                "stlb.page_bytes must be at least one {LINE_BYTES}-byte line"
            ));
        }
        let probs = [
            self.faults.dram_delay_prob,
            self.faults.port_delay_prob,
            self.faults.stlb_evict_prob,
        ];
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("fault probabilities must lie in [0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_paper() {
        let cfg = MemConfig::spade_table1(224);
        // 7 MiB of PE L1 (paper: 7.2 MB), 70 MiB of L2, 84 MiB of LLC.
        assert_eq!(cfg.num_clusters(), 56);
        assert_eq!(cfg.l1.size_bytes * 224, 224 * 32 * 1024);
        assert_eq!(cfg.l2.size_bytes * 56, 73_400_320); // 70 MiB
        assert_eq!(cfg.llc.size_bytes, 88_080_384); // 84 MiB
    }

    #[test]
    #[should_panic]
    fn non_multiple_of_four_is_rejected() {
        let _ = MemConfig::spade_table1(10);
    }

    #[test]
    fn scaled_preserves_balance() {
        let cfg = MemConfig::scaled(56);
        assert!((cfg.dram.bandwidth_gbps - 76.0).abs() < 0.1);
        assert_eq!(cfg.llc.size_bytes, 14 * 1_572_864);
    }

    #[test]
    fn scaled_up_doubles_everything() {
        let base = MemConfig::spade_table1(224);
        let up = base.scaled_up(2);
        assert_eq!(up.num_agents, 448);
        assert_eq!(up.llc.size_bytes, base.llc.size_bytes * 2);
        assert!((up.dram.bandwidth_gbps - 608.0).abs() < 1e-9);
        assert_eq!(up.link_latency, base.link_latency * 2);
    }

    #[test]
    fn validate_accepts_all_presets() {
        assert_eq!(MemConfig::spade_table1(224).validate(), Ok(()));
        assert_eq!(MemConfig::cpu_ice_lake(56).validate(), Ok(()));
        assert_eq!(MemConfig::small_test(4).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_malformed_fields() {
        let mut cfg = MemConfig::small_test(4);
        cfg.agents_per_cluster = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MemConfig::small_test(4);
        cfg.l1.size_bytes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MemConfig::small_test(4);
        cfg.dram.channels = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MemConfig::small_test(4);
        cfg.stlb.page_bytes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MemConfig::small_test(4);
        cfg.faults.dram_delay_prob = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_inexact_geometries() {
        // 9830 B / 12 ways is not a whole number of 768 B sets; the old
        // behavior silently modeled a 9216 B cache.
        let mut cfg = MemConfig::small_test(4);
        cfg.llc = CacheConfig {
            size_bytes: 9830,
            ways: 12,
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("whole number"), "unexpected message: {err}");

        let mut cfg = MemConfig::small_test(4);
        cfg.victim = Some(CacheConfig {
            size_bytes: 300,
            ways: 2,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cpu_config_has_no_victim_cache() {
        let cfg = MemConfig::cpu_ice_lake(56);
        assert!(cfg.victim.is_none());
        assert_eq!(cfg.num_clusters(), 56);
    }
}
