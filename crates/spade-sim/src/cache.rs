use crate::{Line, LINE_BYTES};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a configuration. Capacities that are not a whole number of
    /// sets are *permitted* here (internal models round down — see
    /// [`CacheConfig::is_exact`]), but [`crate::MemConfig::validate`]
    /// rejects them so a user-facing hierarchy never silently models a
    /// smaller cache than requested.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than `ways` lines, or if `ways`
    /// exceeds 64 (sets are tracked with per-set 64-bit valid/dirty masks;
    /// the largest modeled associativity, the 20-way L2, is far below
    /// this).
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "a cache needs at least one way");
        assert!(ways <= 64, "at most 64 ways per set (got {ways})");
        assert!(
            size_bytes >= ways * LINE_BYTES as usize,
            "cache of {size_bytes} B cannot hold {ways} ways"
        );
        CacheConfig { size_bytes, ways }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / LINE_BYTES as usize / self.ways).max(1)
    }

    /// Whether `size_bytes` is a whole (positive) number of
    /// `ways`-associative sets, i.e. the modeled capacity equals the
    /// requested capacity exactly.
    pub fn is_exact(&self) -> bool {
        let set_bytes = self.ways * LINE_BYTES as usize;
        self.size_bytes >= set_bytes && self.size_bytes.is_multiple_of(set_bytes)
    }

    /// Total lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.num_sets() * self.ways
    }
}

/// A dirty line evicted by a fill; the caller must forward it down the
/// hierarchy as a write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line address.
    pub line: Line,
    /// Whether the line was dirty (needs a write-back).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled, possibly evicting a victim.
    Miss {
        /// Line evicted to make room, if the set was full.
        victim: Option<Victim>,
    },
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

const INVALID: Line = Line::MAX;

/// Opaque name for the slot a line occupies, returned by
/// [`Cache::access_at`]. Valid until the line is next evicted,
/// invalidated or flushed; the hierarchy's line filter uses it for O(1)
/// dirty-marking of a line it has proven resident and most-recent.
///
/// Encoding: `set << 6 | way` (6 bits suffice — ways are capped at 64).
pub type SlotHandle = u32;

#[inline]
fn slot_handle(set: usize, way: usize) -> SlotHandle {
    ((set as u32) << 6) | way as u32
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement. Tag-only: it tracks presence, dirtiness and recency, not
/// data (functional values are computed by the caller).
///
/// Used for every cache-like structure in the modeled system: PE L1s, the
/// bypass-buffer victim cache, core L2s, LLC slices, and the baseline CPU
/// caches.
///
/// # Packed set storage
///
/// Each set's replacement state is packed for one cache-friendly pass:
/// tags are set-major (empty ways hold a sentinel that can never match),
/// valid and dirty bits live in one 64-bit mask per set, and recency is a
/// byte of *rank* per slot — 0 is the most recently used of the set's
/// valid ways, `n−1` the least. A lookup is a single tag scan; a fill
/// finds the first free way with one mask op instead of a second scan;
/// and the LRU victim is the way whose rank byte equals `ways − 1`.
///
/// Ranks replace the previous global-counter timestamps. The two encode
/// the same total order (ranks are the descending-stamp order of the
/// valid ways), so every hit/miss/eviction decision is unchanged — and,
/// unlike stamps, re-touching the MRU way mutates *nothing*, which is
/// what lets the hierarchy's line filter skip repeat accesses while
/// staying bit-identical (see `DESIGN.md`).
///
/// # Example
///
/// ```
/// use spade_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2)); // 16 lines, 2-way
/// assert!(!c.access(3, false).is_hit()); // cold miss
/// assert!(c.access(3, false).is_hit());  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    /// Per-slot tags, set-major; empty ways hold [`INVALID`].
    tags: Vec<Line>,
    /// Per-slot recency rank among the *valid* ways of its set (0 = MRU).
    /// Bytes of invalid slots are meaningless.
    rank: Vec<u8>,
    /// Per-set valid bitmask (bit `w` set ⇔ way `w` holds a line).
    valid: Vec<u64>,
    /// Per-set dirty bitmask; always a subset of `valid`.
    dirty: Vec<u64>,
    /// Mask covering all ways of one set.
    way_mask: u64,
    /// Valid-line count, kept incrementally so flushes of an empty cache
    /// are O(1).
    live: usize,
    /// Dirty-line count, kept incrementally so flushes of a clean cache
    /// skip the dirty-line collection entirely.
    dirty_n: usize,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        assert!(
            sets <= 1 << 26,
            "cache of {sets} sets overflows the slot-handle encoding"
        );
        let n = sets * config.ways;
        let way_mask = if config.ways == 64 {
            u64::MAX
        } else {
            (1u64 << config.ways) - 1
        };
        Cache {
            config,
            sets,
            tags: vec![INVALID; n],
            rank: vec![0; n],
            valid: vec![0; sets],
            dirty: vec![0; sets],
            way_mask,
            live: 0,
            dirty_n: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_of(&self, line: Line) -> usize {
        (line % self.sets as u64) as usize
    }

    /// Makes way `w` the most recent of its set, shifting the valid ways
    /// that were more recent one step older. A no-op when `w` is already
    /// the MRU way — the property the hierarchy's line filter relies on.
    #[inline]
    fn promote(&mut self, set: usize, base: usize, w: usize) {
        let r = self.rank[base + w];
        if r == 0 {
            return;
        }
        let mut m = self.valid[set];
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.rank[base + v] < r {
                self.rank[base + v] += 1;
            }
        }
        self.rank[base + w] = 0;
    }

    /// Shifts every valid way of `set` one step older (ahead of inserting
    /// a fresh MRU line).
    #[inline]
    fn age_valid(&mut self, set: usize, base: usize) {
        let mut m = self.valid[set];
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            self.rank[base + v] += 1;
        }
    }

    /// Looks up `line`, filling it on a miss (write-allocate). `is_write`
    /// marks the line dirty.
    #[inline]
    pub fn access(&mut self, line: Line, is_write: bool) -> AccessOutcome {
        self.access_at(line, is_write).0
    }

    /// [`Cache::access`], additionally returning the [`SlotHandle`] of the
    /// slot now holding `line` (it is the MRU way of its set either way).
    pub fn access_at(&mut self, line: Line, is_write: bool) -> (AccessOutcome, SlotHandle) {
        debug_assert_ne!(line, INVALID, "the sentinel line address is reserved");
        let set = self.set_of(line);
        let ways = self.config.ways;
        let base = set * ways;

        // One pass over the set's tags: empty ways hold the sentinel, so
        // this single scan decides hit vs miss (free-way choice comes from
        // the valid mask, victim choice from the rank bytes).
        for w in 0..ways {
            if self.tags[base + w] == line {
                self.promote(set, base, w);
                let bit = 1u64 << w;
                if is_write && self.dirty[set] & bit == 0 {
                    self.dirty[set] |= bit;
                    self.dirty_n += 1;
                }
                return (AccessOutcome::Hit, slot_handle(set, w));
            }
        }

        // Miss: lowest-index free way straight from the mask, else the
        // LRU way (rank ways−1; ranks of a full set are a permutation).
        let free = !self.valid[set] & self.way_mask;
        let (w, victim) = if free != 0 {
            let w = free.trailing_zeros() as usize;
            self.live += 1;
            self.age_valid(set, base);
            (w, None)
        } else {
            let mut w = 0;
            for i in 0..ways {
                if self.rank[base + i] as usize == ways - 1 {
                    w = i;
                    break;
                }
            }
            debug_assert_eq!(self.rank[base + w] as usize, ways - 1);
            let bit = 1u64 << w;
            let was_dirty = self.dirty[set] & bit != 0;
            if was_dirty {
                self.dirty[set] &= !bit;
                self.dirty_n -= 1;
            }
            let victim = Victim {
                line: self.tags[base + w],
                dirty: was_dirty,
            };
            // The victim was the oldest way, so dropping it preserves the
            // relative order of the rest; age them and insert at rank 0.
            self.valid[set] &= !bit;
            self.age_valid(set, base);
            (w, Some(victim))
        };
        let bit = 1u64 << w;
        self.tags[base + w] = line;
        self.rank[base + w] = 0;
        self.valid[set] |= bit;
        if is_write {
            self.dirty[set] |= bit;
            self.dirty_n += 1;
        }
        (AccessOutcome::Miss { victim }, slot_handle(set, w))
    }

    /// Marks the line in `slot` dirty without a lookup. The caller must
    /// have proven residency (a [`SlotHandle`] from an access with no
    /// intervening eviction/invalidation/flush of that line); the
    /// hierarchy's line filter is the one such caller.
    #[inline]
    pub fn mark_dirty_slot(&mut self, slot: SlotHandle) {
        let set = (slot >> 6) as usize;
        let bit = 1u64 << (slot & 63);
        debug_assert!(self.valid[set] & bit != 0, "slot handle names an empty way");
        if self.dirty[set] & bit == 0 {
            self.dirty[set] |= bit;
            self.dirty_n += 1;
        }
    }

    /// Checks for presence without touching LRU state or filling.
    pub fn probe(&self, line: Line) -> bool {
        let set = self.set_of(line);
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].contains(&line)
    }

    /// Invalidates `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: Line) -> Option<bool> {
        let set = self.set_of(line);
        let base = set * self.config.ways;
        for w in 0..self.config.ways {
            if self.tags[base + w] == line {
                let bit = 1u64 << w;
                self.tags[base + w] = INVALID;
                self.valid[set] &= !bit;
                self.live -= 1;
                let was_dirty = self.dirty[set] & bit != 0;
                if was_dirty {
                    self.dirty[set] &= !bit;
                    self.dirty_n -= 1;
                }
                // Close the recency gap so surviving ranks stay a dense
                // permutation (their relative order is untouched).
                let r = self.rank[base + w];
                let mut m = self.valid[set];
                while m != 0 {
                    let v = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if self.rank[base + v] > r {
                        self.rank[base + v] -= 1;
                    }
                }
                return Some(was_dirty);
            }
        }
        None
    }

    /// Writes back and invalidates everything, returning the dirty lines
    /// (the mode-transition operation of §4.1). Convenience wrapper around
    /// [`Cache::writeback_invalidate_all_into`]; hot callers should pass a
    /// reusable buffer to that method instead.
    pub fn writeback_invalidate_all(&mut self) -> Vec<Line> {
        let mut dirty_lines = Vec::new();
        self.writeback_invalidate_all_into(&mut dirty_lines);
        dirty_lines
    }

    /// Writes back and invalidates everything, appending the dirty lines
    /// to `out` in ascending tag-index order (deterministic: the same
    /// order [`Cache::writeback_invalidate_all`] has always produced) and
    /// returning how many were appended.
    ///
    /// Allocation-free fast paths: a cache with no valid lines returns
    /// without touching any array, and a cache with valid-but-clean
    /// contents invalidates in bulk without collecting anything — the
    /// common cases on flush-heavy plans, where most per-tile flushes find
    /// the L1/BBF already clean. When there *are* dirty lines, only the
    /// per-set dirty masks are walked, not every slot.
    pub fn writeback_invalidate_all_into(&mut self, out: &mut Vec<Line>) -> usize {
        if self.live == 0 {
            debug_assert!(self.valid.iter().all(|&m| m == 0));
            debug_assert!(self.tags.iter().all(|&t| t == INVALID));
            return 0;
        }
        let n = self.dirty_n;
        if n == 0 {
            debug_assert!(self.dirty.iter().all(|&m| m == 0));
            self.tags.fill(INVALID);
            self.valid.fill(0);
            self.live = 0;
            return 0;
        }
        let ways = self.config.ways;
        let mut found = 0;
        for set in 0..self.sets {
            let mut m = self.dirty[set];
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                m &= m - 1;
                out.push(self.tags[set * ways + w]);
                found += 1;
            }
            if found == n {
                break;
            }
        }
        debug_assert_eq!(found, n);
        self.tags.fill(INVALID);
        self.valid.fill(0);
        self.dirty.fill(0);
        self.live = 0;
        self.dirty_n = 0;
        n
    }

    /// Number of currently valid lines. The mask popcount doubles as an
    /// independent cross-check of the incremental counter (and of the tag
    /// sentinels) in debug builds.
    pub fn occupancy(&self) -> usize {
        let n: usize = self.valid.iter().map(|m| m.count_ones() as usize).sum();
        debug_assert_eq!(n, self.live);
        debug_assert_eq!(self.tags.iter().filter(|&&t| t != INVALID).count(), n);
        n
    }

    /// Number of currently dirty lines (mask-based cross-check, as with
    /// [`Cache::occupancy`]).
    pub fn dirty_count(&self) -> usize {
        let n: usize = self.dirty.iter().map(|m| m.count_ones() as usize).sum();
        debug_assert_eq!(n, self.dirty_n);
        debug_assert!(self
            .valid
            .iter()
            .zip(&self.dirty)
            .all(|(&v, &d)| d & !v == 0));
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines, 2 ways, 2 sets.
        Cache::new(CacheConfig::new(256, 2))
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let cfg = CacheConfig::new(48 * 1024, 12);
        assert_eq!(cfg.num_sets(), 64);
        assert_eq!(cfg.num_lines(), 768);
    }

    #[test]
    #[should_panic]
    fn undersized_cache_is_rejected() {
        let _ = CacheConfig::new(64, 2);
    }

    #[test]
    #[should_panic]
    fn overwide_sets_are_rejected() {
        let _ = CacheConfig::new(1 << 20, 65);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // 2 sets; lines 0,2,4 map to set 0
        c.access(0, false);
        c.access(2, false);
        c.access(0, false); // 0 is now MRU
        let out = c.access(4, false); // must evict 2
        match out {
            AccessOutcome::Miss { victim: Some(v) } => assert_eq!(v.line, 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.probe(0));
        assert!(!c.probe(2));
    }

    #[test]
    fn dirty_victims_are_reported() {
        let mut c = tiny();
        c.access(0, true);
        c.access(2, false);
        c.access(4, false); // evicts 0 (LRU), which is dirty
        let out = c.access(6, false); // evicts 2, clean
        match out {
            AccessOutcome::Miss { victim: Some(v) } => {
                assert_eq!(v.line, 2);
                assert!(!v.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn probe_does_not_fill() {
        let c = tiny();
        assert!(!c.probe(0));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.probe(0));
    }

    #[test]
    fn invalidate_compacts_recency_order() {
        let mut c = Cache::new(CacheConfig::new(4 * 256, 4)); // 4 ways, 4 sets
        for line in [0, 4, 8, 12] {
            c.access(line, false); // set 0 full; LRU order 0,4,8,12
        }
        c.invalidate(8);
        // Next two fills take the freed way then evict the true LRU (0).
        assert!(matches!(
            c.access(16, false),
            AccessOutcome::Miss { victim: None }
        ));
        match c.access(20, false) {
            AccessOutcome::Miss { victim: Some(v) } => assert_eq!(v.line, 0),
            other => panic!("expected eviction of line 0, got {other:?}"),
        }
    }

    #[test]
    fn writeback_invalidate_all_returns_only_dirty() {
        let mut c = tiny();
        c.access(0, true);
        c.access(1, false);
        c.access(2, true);
        let mut dirty = c.writeback_invalidate_all();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 2]);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn flush_into_reuses_the_buffer_and_preserves_order() {
        let mut c = tiny();
        c.access(2, true);
        c.access(0, true);
        c.access(1, false);
        let mut buf = Vec::with_capacity(8);
        let cap = buf.capacity();
        assert_eq!(c.writeback_invalidate_all_into(&mut buf), 2);
        // Tag-index order: set 0's ways hold [2, 0] in fill order.
        assert_eq!(buf, vec![2, 0]);
        assert_eq!(buf.capacity(), cap);
        // Flushing the now-empty cache is a no-op on the buffer.
        buf.clear();
        assert_eq!(c.writeback_invalidate_all_into(&mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn flush_of_clean_contents_collects_nothing_but_invalidates() {
        let mut c = tiny();
        c.access(0, false);
        c.access(1, false);
        let mut buf = Vec::new();
        assert_eq!(c.writeback_invalidate_all_into(&mut buf), 0);
        assert_eq!(buf.capacity(), 0); // never grew: clean fast path
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(0) && !c.probe(1));
    }

    #[test]
    fn counters_survive_eviction_and_invalidate_churn() {
        let mut c = tiny();
        for i in 0..16u64 {
            c.access(i, i.is_multiple_of(3));
            // occupancy()/dirty_count() debug_assert the incremental
            // counters against the masks.
            let _ = (c.occupancy(), c.dirty_count());
        }
        c.invalidate(15);
        c.invalidate(14);
        let _ = (c.occupancy(), c.dirty_count());
        let flushed = c.writeback_invalidate_all();
        assert!(!flushed.is_empty());
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn exactness_of_geometries_is_reported() {
        assert!(CacheConfig::new(48 * 1024, 12).is_exact());
        assert!(CacheConfig::new(256, 2).is_exact());
        // 9830 B over 12 ways is not a whole number of 768 B sets.
        assert!(!CacheConfig::new(9830, 12).is_exact());
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.access(0, false);
        c.access(1, false);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn sets_partition_the_line_space() {
        let mut c = tiny(); // 2 sets, 2 ways: even lines -> set 0, odd -> set 1
        c.access(0, false);
        c.access(1, false);
        c.access(2, false); // set 0 now holds {0, 2}
        c.access(3, false); // set 1 now holds {1, 3}
        assert!(c.probe(0) && c.probe(1) && c.probe(2) && c.probe(3));
    }

    #[test]
    fn slot_handles_allow_direct_dirty_marking() {
        let mut c = tiny();
        let (_, slot) = c.access_at(6, false);
        let (out, again) = c.access_at(6, false);
        assert!(out.is_hit());
        assert_eq!(slot, again);
        assert_eq!(c.dirty_count(), 0);
        c.mark_dirty_slot(slot);
        assert_eq!(c.dirty_count(), 1);
        c.mark_dirty_slot(slot); // idempotent
        assert_eq!(c.dirty_count(), 1);
        assert_eq!(c.invalidate(6), Some(true));
    }

    #[test]
    fn mru_retouch_is_a_pure_no_op() {
        // The line-filter correctness argument: re-accessing the MRU way
        // must leave the whole cache state (not just decisions) unchanged.
        let mut c = tiny();
        c.access(0, false);
        c.access(2, true);
        let before = format!("{c:?}");
        c.access(2, true);
        assert_eq!(format!("{c:?}"), before);
    }
}
