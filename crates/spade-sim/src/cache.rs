use crate::{Line, LINE_BYTES};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a configuration, rounding the capacity down to a whole
    /// number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than `ways` lines.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "a cache needs at least one way");
        assert!(
            size_bytes >= ways * LINE_BYTES as usize,
            "cache of {size_bytes} B cannot hold {ways} ways"
        );
        CacheConfig { size_bytes, ways }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / LINE_BYTES as usize / self.ways).max(1)
    }

    /// Total lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.num_sets() * self.ways
    }
}

/// A dirty line evicted by a fill; the caller must forward it down the
/// hierarchy as a write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line address.
    pub line: Line,
    /// Whether the line was dirty (needs a write-back).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled, possibly evicting a victim.
    Miss {
        /// Line evicted to make room, if the set was full.
        victim: Option<Victim>,
    },
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

const INVALID: Line = Line::MAX;

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement. Tag-only: it tracks presence, dirtiness and recency, not
/// data (functional values are computed by the caller).
///
/// Used for every cache-like structure in the modeled system: PE L1s, the
/// bypass-buffer victim cache, core L2s, LLC slices, and the baseline CPU
/// caches.
///
/// # Example
///
/// ```
/// use spade_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2)); // 16 lines, 2-way
/// assert!(!c.access(3, false).is_hit()); // cold miss
/// assert!(c.access(3, false).is_hit());  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    tags: Vec<Line>,
    dirty: Vec<bool>,
    stamp: Vec<u64>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        let n = sets * config.ways;
        Cache {
            config,
            sets,
            tags: vec![INVALID; n],
            dirty: vec![false; n],
            stamp: vec![0; n],
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_of(&self, line: Line) -> usize {
        (line % self.sets as u64) as usize
    }

    /// Looks up `line`, filling it on a miss (write-allocate). `is_write`
    /// marks the line dirty.
    pub fn access(&mut self, line: Line, is_write: bool) -> AccessOutcome {
        debug_assert_ne!(line, INVALID, "the sentinel line address is reserved");
        self.tick += 1;
        let set = self.set_of(line);
        let base = set * self.config.ways;
        let ways = &mut self.tags[base..base + self.config.ways];

        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamp[base + w] = self.tick;
            if is_write {
                self.dirty[base + w] = true;
            }
            return AccessOutcome::Hit;
        }

        // Miss: pick an invalid way, else the LRU way.
        let w = match ways.iter().position(|&t| t == INVALID) {
            Some(w) => w,
            None => {
                let mut lru = 0usize;
                for i in 1..self.config.ways {
                    if self.stamp[base + i] < self.stamp[base + lru] {
                        lru = i;
                    }
                }
                lru
            }
        };
        let victim = if self.tags[base + w] == INVALID {
            None
        } else {
            Some(Victim {
                line: self.tags[base + w],
                dirty: self.dirty[base + w],
            })
        };
        self.tags[base + w] = line;
        self.dirty[base + w] = is_write;
        self.stamp[base + w] = self.tick;
        AccessOutcome::Miss { victim }
    }

    /// Checks for presence without touching LRU state or filling.
    pub fn probe(&self, line: Line) -> bool {
        let set = self.set_of(line);
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].contains(&line)
    }

    /// Invalidates `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: Line) -> Option<bool> {
        let set = self.set_of(line);
        let base = set * self.config.ways;
        for w in 0..self.config.ways {
            if self.tags[base + w] == line {
                self.tags[base + w] = INVALID;
                let was_dirty = self.dirty[base + w];
                self.dirty[base + w] = false;
                return Some(was_dirty);
            }
        }
        None
    }

    /// Writes back and invalidates everything, returning the dirty lines
    /// (the mode-transition operation of §4.1).
    pub fn writeback_invalidate_all(&mut self) -> Vec<Line> {
        let mut dirty_lines = Vec::new();
        for i in 0..self.tags.len() {
            if self.tags[i] != INVALID && self.dirty[i] {
                dirty_lines.push(self.tags[i]);
            }
            self.tags[i] = INVALID;
            self.dirty[i] = false;
        }
        dirty_lines
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }

    /// Number of currently dirty lines.
    pub fn dirty_count(&self) -> usize {
        (0..self.tags.len())
            .filter(|&i| self.tags[i] != INVALID && self.dirty[i])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines, 2 ways, 2 sets.
        Cache::new(CacheConfig::new(256, 2))
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let cfg = CacheConfig::new(48 * 1024, 12);
        assert_eq!(cfg.num_sets(), 64);
        assert_eq!(cfg.num_lines(), 768);
    }

    #[test]
    #[should_panic]
    fn undersized_cache_is_rejected() {
        let _ = CacheConfig::new(64, 2);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // 2 sets; lines 0,2,4 map to set 0
        c.access(0, false);
        c.access(2, false);
        c.access(0, false); // 0 is now MRU
        let out = c.access(4, false); // must evict 2
        match out {
            AccessOutcome::Miss { victim: Some(v) } => assert_eq!(v.line, 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.probe(0));
        assert!(!c.probe(2));
    }

    #[test]
    fn dirty_victims_are_reported() {
        let mut c = tiny();
        c.access(0, true);
        c.access(2, false);
        c.access(4, false); // evicts 0 (LRU), which is dirty
        let out = c.access(6, false); // evicts 2, clean
        match out {
            AccessOutcome::Miss { victim: Some(v) } => {
                assert_eq!(v.line, 2);
                assert!(!v.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn probe_does_not_fill() {
        let c = tiny();
        assert!(!c.probe(0));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.probe(0));
    }

    #[test]
    fn writeback_invalidate_all_returns_only_dirty() {
        let mut c = tiny();
        c.access(0, true);
        c.access(1, false);
        c.access(2, true);
        let mut dirty = c.writeback_invalidate_all();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 2]);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.access(0, false);
        c.access(1, false);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn sets_partition_the_line_space() {
        let mut c = tiny(); // 2 sets, 2 ways: even lines -> set 0, odd -> set 1
        c.access(0, false);
        c.access(1, false);
        c.access(2, false); // set 0 now holds {0, 2}
        c.access(3, false); // set 1 now holds {1, 3}
        assert!(c.probe(0) && c.probe(1) && c.probe(2) && c.probe(3));
    }
}
