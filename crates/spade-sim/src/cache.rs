use crate::{Line, LINE_BYTES};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a configuration. Capacities that are not a whole number of
    /// sets are *permitted* here (internal models round down — see
    /// [`CacheConfig::is_exact`]), but [`crate::MemConfig::validate`]
    /// rejects them so a user-facing hierarchy never silently models a
    /// smaller cache than requested.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than `ways` lines.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "a cache needs at least one way");
        assert!(
            size_bytes >= ways * LINE_BYTES as usize,
            "cache of {size_bytes} B cannot hold {ways} ways"
        );
        CacheConfig { size_bytes, ways }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / LINE_BYTES as usize / self.ways).max(1)
    }

    /// Whether `size_bytes` is a whole (positive) number of
    /// `ways`-associative sets, i.e. the modeled capacity equals the
    /// requested capacity exactly.
    pub fn is_exact(&self) -> bool {
        let set_bytes = self.ways * LINE_BYTES as usize;
        self.size_bytes >= set_bytes && self.size_bytes.is_multiple_of(set_bytes)
    }

    /// Total lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.num_sets() * self.ways
    }
}

/// A dirty line evicted by a fill; the caller must forward it down the
/// hierarchy as a write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line address.
    pub line: Line,
    /// Whether the line was dirty (needs a write-back).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled, possibly evicting a victim.
    Miss {
        /// Line evicted to make room, if the set was full.
        victim: Option<Victim>,
    },
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

const INVALID: Line = Line::MAX;

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement. Tag-only: it tracks presence, dirtiness and recency, not
/// data (functional values are computed by the caller).
///
/// Used for every cache-like structure in the modeled system: PE L1s, the
/// bypass-buffer victim cache, core L2s, LLC slices, and the baseline CPU
/// caches.
///
/// # Example
///
/// ```
/// use spade_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2)); // 16 lines, 2-way
/// assert!(!c.access(3, false).is_hit()); // cold miss
/// assert!(c.access(3, false).is_hit());  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    tags: Vec<Line>,
    dirty: Vec<bool>,
    stamp: Vec<u64>,
    tick: u64,
    /// Valid-line count, kept incrementally so flushes of an empty cache
    /// are O(1).
    live: usize,
    /// Dirty-line count, kept incrementally so flushes of a clean cache
    /// skip the dirty-line collection entirely.
    dirty_n: usize,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        let n = sets * config.ways;
        Cache {
            config,
            sets,
            tags: vec![INVALID; n],
            dirty: vec![false; n],
            stamp: vec![0; n],
            tick: 0,
            live: 0,
            dirty_n: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_of(&self, line: Line) -> usize {
        (line % self.sets as u64) as usize
    }

    /// Looks up `line`, filling it on a miss (write-allocate). `is_write`
    /// marks the line dirty.
    pub fn access(&mut self, line: Line, is_write: bool) -> AccessOutcome {
        debug_assert_ne!(line, INVALID, "the sentinel line address is reserved");
        self.tick += 1;
        let set = self.set_of(line);
        let base = set * self.config.ways;
        let ways = &mut self.tags[base..base + self.config.ways];

        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamp[base + w] = self.tick;
            if is_write && !self.dirty[base + w] {
                self.dirty[base + w] = true;
                self.dirty_n += 1;
            }
            return AccessOutcome::Hit;
        }

        // Miss: pick an invalid way, else the LRU way.
        let w = match ways.iter().position(|&t| t == INVALID) {
            Some(w) => w,
            None => {
                let mut lru = 0usize;
                for i in 1..self.config.ways {
                    if self.stamp[base + i] < self.stamp[base + lru] {
                        lru = i;
                    }
                }
                lru
            }
        };
        let victim = if self.tags[base + w] == INVALID {
            self.live += 1;
            None
        } else {
            if self.dirty[base + w] {
                self.dirty_n -= 1;
            }
            Some(Victim {
                line: self.tags[base + w],
                dirty: self.dirty[base + w],
            })
        };
        self.tags[base + w] = line;
        self.dirty[base + w] = is_write;
        if is_write {
            self.dirty_n += 1;
        }
        self.stamp[base + w] = self.tick;
        AccessOutcome::Miss { victim }
    }

    /// Checks for presence without touching LRU state or filling.
    pub fn probe(&self, line: Line) -> bool {
        let set = self.set_of(line);
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].contains(&line)
    }

    /// Invalidates `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: Line) -> Option<bool> {
        let set = self.set_of(line);
        let base = set * self.config.ways;
        for w in 0..self.config.ways {
            if self.tags[base + w] == line {
                self.tags[base + w] = INVALID;
                self.live -= 1;
                let was_dirty = self.dirty[base + w];
                if was_dirty {
                    self.dirty[base + w] = false;
                    self.dirty_n -= 1;
                }
                return Some(was_dirty);
            }
        }
        None
    }

    /// Writes back and invalidates everything, returning the dirty lines
    /// (the mode-transition operation of §4.1). Convenience wrapper around
    /// [`Cache::writeback_invalidate_all_into`]; hot callers should pass a
    /// reusable buffer to that method instead.
    pub fn writeback_invalidate_all(&mut self) -> Vec<Line> {
        let mut dirty_lines = Vec::new();
        self.writeback_invalidate_all_into(&mut dirty_lines);
        dirty_lines
    }

    /// Writes back and invalidates everything, appending the dirty lines
    /// to `out` in ascending tag-index order (deterministic: the same
    /// order [`Cache::writeback_invalidate_all`] has always produced) and
    /// returning how many were appended.
    ///
    /// Allocation-free fast paths: a cache with no valid lines returns
    /// without touching any array, and a cache with valid-but-clean
    /// contents invalidates in bulk without collecting anything — the
    /// common cases on flush-heavy plans, where most per-tile flushes find
    /// the L1/BBF already clean.
    pub fn writeback_invalidate_all_into(&mut self, out: &mut Vec<Line>) -> usize {
        if self.live == 0 {
            debug_assert!(self.tags.iter().all(|&t| t == INVALID));
            return 0;
        }
        let n = self.dirty_n;
        if n == 0 {
            debug_assert!(self.dirty.iter().all(|&d| !d));
            self.tags.fill(INVALID);
            self.live = 0;
            return 0;
        }
        let mut found = 0;
        for i in 0..self.tags.len() {
            if self.tags[i] != INVALID && self.dirty[i] {
                out.push(self.tags[i]);
                found += 1;
                if found == n {
                    break;
                }
            }
        }
        debug_assert_eq!(found, n);
        self.tags.fill(INVALID);
        self.dirty.fill(false);
        self.live = 0;
        self.dirty_n = 0;
        n
    }

    /// Number of currently valid lines. The full scan doubles as an
    /// independent cross-check of the incremental counter in debug builds.
    pub fn occupancy(&self) -> usize {
        let n = self.tags.iter().filter(|&&t| t != INVALID).count();
        debug_assert_eq!(n, self.live);
        n
    }

    /// Number of currently dirty lines (scan-based cross-check, as with
    /// [`Cache::occupancy`]).
    pub fn dirty_count(&self) -> usize {
        let n = (0..self.tags.len())
            .filter(|&i| self.tags[i] != INVALID && self.dirty[i])
            .count();
        debug_assert_eq!(n, self.dirty_n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines, 2 ways, 2 sets.
        Cache::new(CacheConfig::new(256, 2))
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let cfg = CacheConfig::new(48 * 1024, 12);
        assert_eq!(cfg.num_sets(), 64);
        assert_eq!(cfg.num_lines(), 768);
    }

    #[test]
    #[should_panic]
    fn undersized_cache_is_rejected() {
        let _ = CacheConfig::new(64, 2);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // 2 sets; lines 0,2,4 map to set 0
        c.access(0, false);
        c.access(2, false);
        c.access(0, false); // 0 is now MRU
        let out = c.access(4, false); // must evict 2
        match out {
            AccessOutcome::Miss { victim: Some(v) } => assert_eq!(v.line, 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.probe(0));
        assert!(!c.probe(2));
    }

    #[test]
    fn dirty_victims_are_reported() {
        let mut c = tiny();
        c.access(0, true);
        c.access(2, false);
        c.access(4, false); // evicts 0 (LRU), which is dirty
        let out = c.access(6, false); // evicts 2, clean
        match out {
            AccessOutcome::Miss { victim: Some(v) } => {
                assert_eq!(v.line, 2);
                assert!(!v.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn probe_does_not_fill() {
        let c = tiny();
        assert!(!c.probe(0));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.probe(0));
    }

    #[test]
    fn writeback_invalidate_all_returns_only_dirty() {
        let mut c = tiny();
        c.access(0, true);
        c.access(1, false);
        c.access(2, true);
        let mut dirty = c.writeback_invalidate_all();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 2]);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn flush_into_reuses_the_buffer_and_preserves_order() {
        let mut c = tiny();
        c.access(2, true);
        c.access(0, true);
        c.access(1, false);
        let mut buf = Vec::with_capacity(8);
        let cap = buf.capacity();
        assert_eq!(c.writeback_invalidate_all_into(&mut buf), 2);
        // Tag-index order: set 0's ways hold [2, 0] in fill order.
        assert_eq!(buf, vec![2, 0]);
        assert_eq!(buf.capacity(), cap);
        // Flushing the now-empty cache is a no-op on the buffer.
        buf.clear();
        assert_eq!(c.writeback_invalidate_all_into(&mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn flush_of_clean_contents_collects_nothing_but_invalidates() {
        let mut c = tiny();
        c.access(0, false);
        c.access(1, false);
        let mut buf = Vec::new();
        assert_eq!(c.writeback_invalidate_all_into(&mut buf), 0);
        assert_eq!(buf.capacity(), 0); // never grew: clean fast path
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(0) && !c.probe(1));
    }

    #[test]
    fn counters_survive_eviction_and_invalidate_churn() {
        let mut c = tiny();
        for i in 0..16u64 {
            c.access(i, i.is_multiple_of(3));
            // occupancy()/dirty_count() debug_assert the incremental
            // counters against a full scan.
            let _ = (c.occupancy(), c.dirty_count());
        }
        c.invalidate(15);
        c.invalidate(14);
        let _ = (c.occupancy(), c.dirty_count());
        let flushed = c.writeback_invalidate_all();
        assert!(!flushed.is_empty());
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn exactness_of_geometries_is_reported() {
        assert!(CacheConfig::new(48 * 1024, 12).is_exact());
        assert!(CacheConfig::new(256, 2).is_exact());
        // 9830 B over 12 ways is not a whole number of 768 B sets.
        assert!(!CacheConfig::new(9830, 12).is_exact());
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.access(0, false);
        c.access(1, false);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn sets_partition_the_line_space() {
        let mut c = tiny(); // 2 sets, 2 ways: even lines -> set 0, odd -> set 1
        c.access(0, false);
        c.access(1, false);
        c.access(2, false); // set 0 now holds {0, 2}
        c.access(3, false); // set 1 now holds {1, 3}
        assert!(c.probe(0) && c.probe(1) && c.probe(2) && c.probe(3));
    }
}
