//! Property tests of the memory-system invariants.

use proptest::prelude::*;
use spade_sim::{AccessOutcome, AccessPath, Cache, CacheConfig, DataClass, MemConfig, MemorySystem};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A cache never holds more lines than its capacity, never duplicates
    /// a tag, and an access to a just-filled line always hits.
    #[test]
    fn cache_capacity_and_uniqueness(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..300),
        ways in 1usize..5,
    ) {
        let config = CacheConfig::new(1024, ways); // 16 lines
        let mut cache = Cache::new(config);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for (line, write) in accesses {
            let out = cache.access(line, write);
            match out {
                AccessOutcome::Hit => prop_assert!(resident.contains(&line)),
                AccessOutcome::Miss { victim } => {
                    prop_assert!(!resident.contains(&line));
                    if let Some(v) = victim {
                        prop_assert!(resident.remove(&v.line), "victim {} was not resident", v.line);
                    }
                    resident.insert(line);
                }
            }
            prop_assert!(cache.occupancy() <= config.num_lines());
            prop_assert_eq!(cache.occupancy(), resident.len());
            prop_assert!(cache.probe(line));
        }
    }

    /// Write-back-invalidate returns exactly the lines written and not yet
    /// evicted-with-writeback.
    #[test]
    fn writeback_invalidate_returns_all_dirty(
        writes in proptest::collection::vec(0u64..32, 0..100),
    ) {
        let mut cache = Cache::new(CacheConfig::new(4096, 4)); // 64 lines >= universe
        for &line in &writes {
            cache.access(line, true);
        }
        let mut dirty = cache.writeback_invalidate_all();
        dirty.sort_unstable();
        let mut expected: Vec<u64> = writes.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(dirty, expected);
        prop_assert_eq!(cache.occupancy(), 0);
    }

    /// Completion times from the hierarchy are never earlier than issue
    /// time plus the L1 latency, and monotonically consistent with path
    /// length (a hit is never slower than the preceding miss of the same
    /// line at the same level).
    #[test]
    fn hierarchy_latency_sanity(
        lines in proptest::collection::vec(0u64..256, 1..200),
        agent in 0usize..4,
    ) {
        let mut mem = MemorySystem::new(MemConfig::small_test(4));
        let mut now = 0u64;
        for line in lines {
            let done = mem.read(agent, line, AccessPath::Cached, DataClass::CMatrix, now);
            prop_assert!(done >= now + mem.config().l1_latency);
            now = done;
        }
        // Conservation: every DRAM access was a miss somewhere above.
        let s = mem.stats();
        prop_assert!(s.dram_accesses() <= s.requests_issued + s.level(spade_sim::LevelKind::Llc).writebacks);
    }

    /// Bypass reads never change any cache state.
    #[test]
    fn bypass_reads_leave_caches_cold(
        lines in proptest::collection::vec(0u64..1024, 1..100),
    ) {
        let mut mem = MemorySystem::new(MemConfig::small_test(2));
        for line in lines {
            mem.read(0, line, AccessPath::Bypass, DataClass::SparseIn, 0);
        }
        prop_assert_eq!(mem.l1_occupancy(0), 0);
        prop_assert_eq!(mem.llc_occupancy(), 0);
        prop_assert_eq!(mem.stats().dram_accesses(), mem.stats().requests_issued);
    }

    /// The flush operation leaves no dirty state behind: a second flush
    /// returns zero lines.
    #[test]
    fn flush_is_idempotent(
        ops in proptest::collection::vec((0u64..128, any::<bool>(), 0usize..2), 1..150),
    ) {
        let mut mem = MemorySystem::new(MemConfig::small_test(2));
        for (line, write, agent) in ops {
            let path = if line % 3 == 0 { AccessPath::BypassVictim } else { AccessPath::Cached };
            if write {
                mem.write(agent, line, path, DataClass::RMatrix, 0);
            } else {
                mem.read(agent, line, path, DataClass::RMatrix, 0);
            }
        }
        mem.flush_all(1_000);
        let again = mem.flush_all(2_000);
        prop_assert_eq!(again, 0);
    }
}
