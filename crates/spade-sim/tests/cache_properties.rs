//! Randomized tests of the memory-system invariants, driven by a
//! deterministic SplitMix64 stream (spade-sim sits below the matrix crate,
//! so it carries its own tiny generator copy).

use spade_sim::{
    AccessOutcome, AccessPath, Cache, CacheConfig, DataClass, MemConfig, MemorySystem,
};

/// SplitMix64 — the same stream `spade_matrix::rng::Rng64` produces.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)` (rejection sampling).
    fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A cache never holds more lines than its capacity, never duplicates
/// a tag, and an access to a just-filled line always hits.
#[test]
fn cache_capacity_and_uniqueness() {
    let mut rng = Rng(0xcac4e);
    for case in 0..128 {
        let num_accesses = 1 + rng.bounded(299) as usize;
        let ways = 1 + rng.bounded(4) as usize;
        let config = CacheConfig::new(1024, ways); // 16 lines
        let mut cache = Cache::new(config);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for _ in 0..num_accesses {
            let line = rng.bounded(64);
            let write = rng.gen_bool();
            let out = cache.access(line, write);
            match out {
                AccessOutcome::Hit => assert!(resident.contains(&line), "case {case}"),
                AccessOutcome::Miss { victim } => {
                    assert!(!resident.contains(&line), "case {case}");
                    if let Some(v) = victim {
                        assert!(
                            resident.remove(&v.line),
                            "case {case}: victim {} was not resident",
                            v.line
                        );
                    }
                    resident.insert(line);
                }
            }
            assert!(cache.occupancy() <= config.num_lines());
            assert_eq!(cache.occupancy(), resident.len());
            assert!(cache.probe(line));
        }
    }
}

/// Write-back-invalidate returns exactly the lines written and not yet
/// evicted-with-writeback.
#[test]
fn writeback_invalidate_returns_all_dirty() {
    let mut rng = Rng(0xd124);
    for case in 0..128 {
        let writes: Vec<u64> = (0..rng.bounded(100)).map(|_| rng.bounded(32)).collect();
        let mut cache = Cache::new(CacheConfig::new(4096, 4)); // 64 lines >= universe
        for &line in &writes {
            cache.access(line, true);
        }
        let mut dirty = cache.writeback_invalidate_all();
        dirty.sort_unstable();
        let mut expected: Vec<u64> = writes.clone();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(dirty, expected, "case {case}");
        assert_eq!(cache.occupancy(), 0);
    }
}

/// Completion times from the hierarchy are never earlier than issue
/// time plus the L1 latency.
#[test]
fn hierarchy_latency_sanity() {
    let mut rng = Rng(0x1a7);
    for _ in 0..128 {
        let agent = rng.bounded(4) as usize;
        let num = 1 + rng.bounded(199) as usize;
        let mut mem = MemorySystem::new(MemConfig::small_test(4));
        let mut now = 0u64;
        for _ in 0..num {
            let line = rng.bounded(256);
            let done = mem.read(agent, line, AccessPath::Cached, DataClass::CMatrix, now);
            assert!(done >= now + mem.config().l1_latency);
            now = done;
        }
        // Conservation: every DRAM access was a miss somewhere above.
        let s = mem.stats();
        assert!(
            s.dram_accesses() <= s.requests_issued + s.level(spade_sim::LevelKind::Llc).writebacks
        );
    }
}

/// Bypass reads never change any cache state.
#[test]
fn bypass_reads_leave_caches_cold() {
    let mut rng = Rng(0xb497);
    for _ in 0..128 {
        let num = 1 + rng.bounded(99) as usize;
        let mut mem = MemorySystem::new(MemConfig::small_test(2));
        for _ in 0..num {
            let line = rng.bounded(1024);
            mem.read(0, line, AccessPath::Bypass, DataClass::SparseIn, 0);
        }
        assert_eq!(mem.l1_occupancy(0), 0);
        assert_eq!(mem.llc_occupancy(), 0);
        assert_eq!(mem.stats().dram_accesses(), mem.stats().requests_issued);
    }
}

/// A straightforward stamp-based LRU model: every hit or fill takes a
/// fresh global tick, misses fill the lowest-index invalid way first and
/// otherwise evict the minimum-stamp (least recent) way. This is the
/// behavior the packed rank-byte cache must reproduce decision for
/// decision.
struct StampCache {
    sets: usize,
    ways: usize,
    slots: Vec<Option<StampLine>>,
    tick: u64,
}

#[derive(Clone, Copy)]
struct StampLine {
    line: u64,
    dirty: bool,
    stamp: u64,
}

impl StampCache {
    fn new(config: CacheConfig) -> Self {
        StampCache {
            sets: config.num_sets(),
            ways: config.ways,
            slots: vec![None; config.num_lines()],
            tick: 0,
        }
    }

    fn access(&mut self, line: u64, is_write: bool) -> AccessOutcome {
        let base = (line % self.sets as u64) as usize * self.ways;
        let set = &mut self.slots[base..base + self.ways];
        self.tick += 1;
        if let Some(s) = set.iter_mut().flatten().find(|s| s.line == line) {
            s.stamp = self.tick;
            s.dirty |= is_write;
            return AccessOutcome::Hit;
        }
        let fill = StampLine {
            line,
            dirty: is_write,
            stamp: self.tick,
        };
        if let Some(free) = set.iter_mut().find(|s| s.is_none()) {
            *free = Some(fill);
            return AccessOutcome::Miss { victim: None };
        }
        let lru = set
            .iter_mut()
            .min_by_key(|s| s.unwrap().stamp)
            .expect("set has ways");
        let evicted = lru.unwrap();
        *lru = Some(fill);
        AccessOutcome::Miss {
            victim: Some(spade_sim::Victim {
                line: evicted.line,
                dirty: evicted.dirty,
            }),
        }
    }

    fn dirty_lines_sorted(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.dirty)
            .map(|s| s.line)
            .collect();
        out.sort_unstable();
        out
    }
}

/// The packed tag/rank/bitmask cache makes exactly the decisions of the
/// stamp-based LRU reference — same hit/miss outcome, same victim, same
/// dirty set — over randomized streams across several geometries.
#[test]
fn packed_cache_matches_the_stamp_lru_reference() {
    let mut rng = Rng(0x4ef5_7a4b);
    for case in 0..192 {
        let ways = 1 + rng.bounded(8) as usize;
        let sets = 1 + rng.bounded(8) as usize;
        let config = CacheConfig::new(sets * ways * 64, ways);
        let mut packed = Cache::new(config);
        let mut reference = StampCache::new(config);
        let universe = 1 + rng.bounded(4 * config.num_lines() as u64);
        for op in 0..400 {
            let line = rng.bounded(universe);
            let write = rng.gen_bool();
            let got = packed.access(line, write);
            let want = reference.access(line, write);
            assert_eq!(
                got, want,
                "case {case} op {op}: packed cache diverged from the stamp \
                 reference ({sets} sets x {ways} ways, line {line}, write={write})"
            );
        }
        let mut packed_dirty = packed.writeback_invalidate_all();
        packed_dirty.sort_unstable();
        assert_eq!(
            packed_dirty,
            reference.dirty_lines_sorted(),
            "case {case}: dirty sets diverged"
        );
    }
}

/// The flush operation leaves no dirty state behind: a second flush
/// returns zero lines.
#[test]
fn flush_is_idempotent() {
    let mut rng = Rng(0xf1a5);
    for case in 0..128 {
        let num = 1 + rng.bounded(149) as usize;
        let mut mem = MemorySystem::new(MemConfig::small_test(2));
        for _ in 0..num {
            let line = rng.bounded(128);
            let write = rng.gen_bool();
            let agent = rng.bounded(2) as usize;
            let path = if line.is_multiple_of(3) {
                AccessPath::BypassVictim
            } else {
                AccessPath::Cached
            };
            if write {
                mem.write(agent, line, path, DataClass::RMatrix, 0);
            } else {
                mem.read(agent, line, path, DataClass::RMatrix, 0);
            }
        }
        mem.flush_all(1_000);
        let again = mem.flush_all(2_000);
        assert_eq!(again, 0, "case {case}: second flush found dirty lines");
    }
}
