//! Randomized tests of the memory-system invariants, driven by a
//! deterministic SplitMix64 stream (spade-sim sits below the matrix crate,
//! so it carries its own tiny generator copy).

use spade_sim::{
    AccessOutcome, AccessPath, Cache, CacheConfig, DataClass, MemConfig, MemorySystem,
};

/// SplitMix64 — the same stream `spade_matrix::rng::Rng64` produces.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)` (rejection sampling).
    fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A cache never holds more lines than its capacity, never duplicates
/// a tag, and an access to a just-filled line always hits.
#[test]
fn cache_capacity_and_uniqueness() {
    let mut rng = Rng(0xcac4e);
    for case in 0..128 {
        let num_accesses = 1 + rng.bounded(299) as usize;
        let ways = 1 + rng.bounded(4) as usize;
        let config = CacheConfig::new(1024, ways); // 16 lines
        let mut cache = Cache::new(config);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for _ in 0..num_accesses {
            let line = rng.bounded(64);
            let write = rng.gen_bool();
            let out = cache.access(line, write);
            match out {
                AccessOutcome::Hit => assert!(resident.contains(&line), "case {case}"),
                AccessOutcome::Miss { victim } => {
                    assert!(!resident.contains(&line), "case {case}");
                    if let Some(v) = victim {
                        assert!(
                            resident.remove(&v.line),
                            "case {case}: victim {} was not resident",
                            v.line
                        );
                    }
                    resident.insert(line);
                }
            }
            assert!(cache.occupancy() <= config.num_lines());
            assert_eq!(cache.occupancy(), resident.len());
            assert!(cache.probe(line));
        }
    }
}

/// Write-back-invalidate returns exactly the lines written and not yet
/// evicted-with-writeback.
#[test]
fn writeback_invalidate_returns_all_dirty() {
    let mut rng = Rng(0xd124);
    for case in 0..128 {
        let writes: Vec<u64> = (0..rng.bounded(100)).map(|_| rng.bounded(32)).collect();
        let mut cache = Cache::new(CacheConfig::new(4096, 4)); // 64 lines >= universe
        for &line in &writes {
            cache.access(line, true);
        }
        let mut dirty = cache.writeback_invalidate_all();
        dirty.sort_unstable();
        let mut expected: Vec<u64> = writes.clone();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(dirty, expected, "case {case}");
        assert_eq!(cache.occupancy(), 0);
    }
}

/// Completion times from the hierarchy are never earlier than issue
/// time plus the L1 latency.
#[test]
fn hierarchy_latency_sanity() {
    let mut rng = Rng(0x1a7);
    for _ in 0..128 {
        let agent = rng.bounded(4) as usize;
        let num = 1 + rng.bounded(199) as usize;
        let mut mem = MemorySystem::new(MemConfig::small_test(4));
        let mut now = 0u64;
        for _ in 0..num {
            let line = rng.bounded(256);
            let done = mem.read(agent, line, AccessPath::Cached, DataClass::CMatrix, now);
            assert!(done >= now + mem.config().l1_latency);
            now = done;
        }
        // Conservation: every DRAM access was a miss somewhere above.
        let s = mem.stats();
        assert!(
            s.dram_accesses() <= s.requests_issued + s.level(spade_sim::LevelKind::Llc).writebacks
        );
    }
}

/// Bypass reads never change any cache state.
#[test]
fn bypass_reads_leave_caches_cold() {
    let mut rng = Rng(0xb497);
    for _ in 0..128 {
        let num = 1 + rng.bounded(99) as usize;
        let mut mem = MemorySystem::new(MemConfig::small_test(2));
        for _ in 0..num {
            let line = rng.bounded(1024);
            mem.read(0, line, AccessPath::Bypass, DataClass::SparseIn, 0);
        }
        assert_eq!(mem.l1_occupancy(0), 0);
        assert_eq!(mem.llc_occupancy(), 0);
        assert_eq!(mem.stats().dram_accesses(), mem.stats().requests_issued);
    }
}

/// The flush operation leaves no dirty state behind: a second flush
/// returns zero lines.
#[test]
fn flush_is_idempotent() {
    let mut rng = Rng(0xf1a5);
    for case in 0..128 {
        let num = 1 + rng.bounded(149) as usize;
        let mut mem = MemorySystem::new(MemConfig::small_test(2));
        for _ in 0..num {
            let line = rng.bounded(128);
            let write = rng.gen_bool();
            let agent = rng.bounded(2) as usize;
            let path = if line.is_multiple_of(3) {
                AccessPath::BypassVictim
            } else {
                AccessPath::Cached
            };
            if write {
                mem.write(agent, line, path, DataClass::RMatrix, 0);
            } else {
                mem.read(agent, line, path, DataClass::RMatrix, 0);
            }
        }
        mem.flush_all(1_000);
        let again = mem.flush_all(2_000);
        assert_eq!(again, 0, "case {case}: second flush found dirty lines");
    }
}
