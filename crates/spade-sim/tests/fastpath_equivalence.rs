//! The filtered memory fast path is an optimization, not a model change:
//! for any access stream, the hierarchy with filters enabled must return
//! the same completion cycle as the always-translate, always-lookup slow
//! path on every single access, and the two must agree on the full
//! statistics block after each one. These tests drive seeded random and
//! adversarial streams through paired hierarchies to pin that guarantee.

use spade_sim::{AccessPath, DataClass, FaultConfig, MemConfig, MemorySystem};

/// SplitMix64 — the same stream `spade_matrix::rng::Rng64` produces
/// (spade-sim sits below the matrix crate, so it carries its own copy).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Draws one random access. Lines come from a small pool with a strong
/// repeat bias so both filters engage often; paths and writes are mixed.
fn random_op(
    rng: &mut Rng,
    agents: usize,
    last_line: u64,
) -> (usize, u64, AccessPath, DataClass, bool) {
    let agent = rng.bounded(agents as u64) as usize;
    // 1/3 exact repeat, 1/3 same-page neighbor, 1/3 fresh line.
    let line = match rng.bounded(3) {
        0 => last_line,
        1 => last_line ^ rng.bounded(64),
        _ => rng.bounded(2048),
    };
    let path = match rng.bounded(5) {
        0 => AccessPath::Bypass,
        1 => AccessPath::BypassVictim,
        _ => AccessPath::Cached,
    };
    let class = match rng.bounded(4) {
        0 => DataClass::SparseIn,
        1 => DataClass::SparseOut,
        2 => DataClass::RMatrix,
        _ => DataClass::CMatrix,
    };
    (agent, line, path, class, rng.gen_bool())
}

/// Drives `ops` random accesses through a fast and a slow hierarchy built
/// from the same config, asserting identical completion cycles and
/// identical `MemStats` after every access. Returns the fast system for
/// follow-up assertions.
fn run_paired(config: MemConfig, seed: u64, ops: usize) -> MemorySystem {
    let mut fast = MemorySystem::new(config.clone());
    fast.set_fast_path(true);
    let mut slow = MemorySystem::new(config);
    slow.set_fast_path(false);
    assert!(!slow.fast_path_active());

    let mut rng = Rng(seed);
    let mut now = 0u64;
    let mut last_line = 0u64;
    for i in 0..ops {
        let (agent, line, path, class, is_write) =
            random_op(&mut rng, fast.config().num_agents, last_line);
        last_line = line;
        let (f, s) = if is_write {
            (
                fast.write(agent, line, path, class, now),
                slow.write(agent, line, path, class, now),
            )
        } else {
            (
                fast.read(agent, line, path, class, now),
                slow.read(agent, line, path, class, now),
            )
        };
        assert_eq!(
            f, s,
            "seed {seed:#x} op {i}: completion cycles diverge \
             (agent {agent}, line {line}, {path:?}, write={is_write})"
        );
        assert_eq!(
            fast.stats(),
            slow.stats(),
            "seed {seed:#x} op {i}: MemStats diverge after the access"
        );
        // Occasionally interleave the maintenance operations that clear
        // the filters, at matching points on both sides.
        match i % 97 {
            31 => {
                assert_eq!(fast.flush_agent(agent, now), slow.flush_agent(agent, now));
            }
            67 => {
                assert_eq!(fast.flush_all(now), slow.flush_all(now));
            }
            _ => {}
        }
        now += 1 + rng.bounded(3);
    }
    assert_eq!(fast.stats(), slow.stats());
    fast
}

#[test]
fn random_streams_are_identical_per_access() {
    for seed in [1u64, 0xDEAD_BEEF, 0x5eed_5eed_5eed] {
        let fast = run_paired(MemConfig::small_test(4), seed, 1_500);
        assert!(
            fast.filter_line_hits() + fast.filter_page_hits() > 0,
            "seed {seed:#x}: the stream never engaged a filter — the test \
             exercised nothing"
        );
    }
}

#[test]
fn repeat_heavy_stream_engages_both_filters() {
    let mut fast = MemorySystem::new(MemConfig::small_test(2));
    fast.set_fast_path(true);
    let mut slow = MemorySystem::new(MemConfig::small_test(2));
    slow.set_fast_path(false);
    for now in 0..512u64 {
        // 8 touches per line, lines walk sequentially: the line filter
        // catches the repeats and the page latch the line advances.
        let line = now / 8;
        let f = fast.read(0, line, AccessPath::Cached, DataClass::CMatrix, now);
        let s = slow.read(0, line, AccessPath::Cached, DataClass::CMatrix, now);
        assert_eq!(f, s);
    }
    assert_eq!(fast.stats(), slow.stats());
    assert!(fast.filter_line_hits() > 256, "line filter barely engaged");
    assert!(fast.filter_page_hits() > 400, "page latch barely engaged");
    assert_eq!(slow.filter_line_hits(), 0);
    assert_eq!(slow.filter_page_hits(), 0);
}

#[test]
fn fault_plans_force_the_slow_path_and_still_agree() {
    for seed in [7u64, 0xC0FFEE] {
        let mut config = MemConfig::small_test(4);
        config.faults = FaultConfig::stress(seed);
        let mut armed = MemorySystem::new(config.clone());
        armed.set_fast_path(true);
        // The request is latched but the filters must stay down: fault
        // plans can evict STLB entries, which breaks the latch invariant.
        assert!(
            !armed.fast_path_active(),
            "fault-armed hierarchy left its filters on"
        );
        let fast = run_paired(config, seed ^ 0xA5A5, 1_000);
        assert!(
            fast.stats().faults_injected > 0,
            "stress({seed:#x}) plan injected nothing — the test exercised \
             no fault interleavings"
        );
        assert_eq!(
            fast.filter_line_hits() + fast.filter_page_hits(),
            0,
            "filters counted hits while vetoed"
        );
    }
}

#[test]
fn toggling_mid_stream_preserves_equivalence() {
    // A hierarchy whose fast path is flipped on and off mid-run must stay
    // identical to one that never had it: toggling only clears memos.
    let mut toggled = MemorySystem::new(MemConfig::small_test(2));
    let mut slow = MemorySystem::new(MemConfig::small_test(2));
    slow.set_fast_path(false);
    let mut rng = Rng(0x70661e);
    let mut last_line = 0;
    for now in 0..800u64 {
        if now % 100 == 0 {
            toggled.set_fast_path(now % 200 == 0);
        }
        let (agent, line, path, class, is_write) = random_op(&mut rng, 2, last_line);
        last_line = line;
        let (t, s) = if is_write {
            (
                toggled.write(agent, line, path, class, now),
                slow.write(agent, line, path, class, now),
            )
        } else {
            (
                toggled.read(agent, line, path, class, now),
                slow.read(agent, line, path, class, now),
            )
        };
        assert_eq!(t, s, "op {now}: toggled hierarchy diverged");
        assert_eq!(toggled.stats(), slow.stats(), "op {now}: stats diverged");
    }
}
