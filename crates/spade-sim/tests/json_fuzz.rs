//! Property/fuzz tests for the `spade_sim::json` codec: the wire format
//! of the experiment daemon. Random document round-trips, every-prefix
//! truncation rejection, byte-mutation garbage (must reject or parse,
//! never panic), and frame reassembly under adversarial chunking.
//!
//! Deterministic by construction: the generator is seeded SplitMix64
//! (inlined — spade-sim has no dependencies), so a failure reproduces.

use std::io::Read;

use spade_sim::json::MAX_FRAME_BYTES;
use spade_sim::{FrameError, FrameReader, JsonValue};

/// SplitMix64 (same recurrence as `spade_matrix::rng::Rng64`, inlined
/// because spade-sim sits below spade-matrix in the crate DAG).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random string exercising escapes: controls, quotes, backslashes,
/// ASCII, and astral-plane characters (which render as `\uXXXX`
/// surrogate pairs).
fn random_string(rng: &mut Rng) -> String {
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| match rng.below(6) {
            0 => '"',
            1 => '\\',
            2 => char::from_u32(rng.below(0x20) as u32).unwrap(),
            3 => char::from_u32(0x1_F600 + rng.below(16) as u32).unwrap(),
            4 => char::from_u32(0xE9 + rng.below(64) as u32).unwrap(),
            _ => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
        })
        .collect()
}

/// A random JSON tree of bounded depth, covering every variant
/// (including non-finite floats, which must render as `null`).
fn random_value(rng: &mut Rng, depth: usize) -> JsonValue {
    let pick = if depth == 0 {
        rng.below(6)
    } else {
        rng.below(8)
    };
    match pick {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.next().is_multiple_of(2)),
        2 => JsonValue::UInt(rng.next()),
        3 => JsonValue::Int(-((rng.next() >> 1) as i64)),
        4 => JsonValue::Float(f64::from_bits(rng.next())),
        5 => JsonValue::Str(random_string(rng)),
        6 => {
            let n = rng.below(4) as usize;
            JsonValue::Array((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.below(4) as usize;
            JsonValue::object((0..n).map(|i| {
                (
                    format!("{}{i}", random_string(rng)),
                    random_value(rng, depth - 1),
                )
            }))
        }
    }
}

/// The codec contract: `parse ∘ render` is the identity on rendered
/// text. (Tree equality is deliberately not the property — the renderer
/// canonicalizes, e.g. `Float(1500.0)` renders as `1500` and parses
/// back as `UInt`, and non-finite floats render as `null`.)
#[test]
fn random_documents_round_trip_to_identical_text() {
    let mut rng = Rng(0xDEAD_BEEF);
    for _ in 0..500 {
        let value = random_value(&mut rng, 3);
        let text = value.render();
        let parsed = JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("rendered document failed to parse: {e}\n{text}"));
        assert_eq!(parsed.render(), text, "render∘parse not a fixpoint");
    }
}

/// Every proper prefix of an object document is rejected — the property
/// the daemon relies on to detect requests cut off mid-frame.
#[test]
fn every_truncation_of_an_object_document_is_rejected() {
    let mut rng = Rng(0x5EED);
    for _ in 0..50 {
        let value = JsonValue::object([
            ("payload", random_value(&mut rng, 2)),
            ("tail", JsonValue::Bool(true)),
        ]);
        let text = value.render();
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let prefix = &text[..cut];
            assert!(
                JsonValue::parse(prefix).is_err(),
                "truncation at byte {cut} of {} parsed: {prefix:?}",
                text.len()
            );
        }
    }
}

/// Byte-level mutations of valid documents must parse or reject — never
/// panic, hang, or tear the parser's state. (The assertion is the call
/// itself: a panic fails the test.)
#[test]
fn mutated_documents_never_panic_the_parser() {
    let mut rng = Rng(0xF00D_CAFE);
    for _ in 0..200 {
        let value = random_value(&mut rng, 3);
        let mut bytes = value.render().into_bytes();
        if bytes.is_empty() {
            continue;
        }
        for _ in 0..8 {
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] = rng.next() as u8;
        }
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = JsonValue::parse(text);
        }
    }
}

/// Classic garbage corpus: none of it parses, all of it errors (no
/// panics), and the error carries a byte offset.
#[test]
fn garbage_corpus_is_rejected_with_positions() {
    for garbage in [
        "",
        "   ",
        "{",
        "}",
        "[[[",
        "{\"a\"",
        "{\"a\":}",
        "[1,]",
        "{\"a\":1,}",
        "nul",
        "truefalse",
        "1 2",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"lone surrogate \\ud800\"",
        "+1",
        "01",
        "- 1",
        "1.",
        "1e",
        "{\"dup\" 1}",
        "\u{7f}GET / HTTP/1.1",
    ] {
        assert!(
            JsonValue::parse(garbage).is_err(),
            "garbage parsed: {garbage:?}"
        );
    }
}

/// A reader that returns data in adversarially sized chunks (including
/// zero-progress reads are not allowed by the `Read` contract, so the
/// minimum is one byte).
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    rng: Rng,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.data.len() {
            return Ok(0);
        }
        let max = (self.data.len() - self.pos).min(buf.len());
        let n = (self.rng.below(7) as usize + 1).min(max);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Frames reassemble exactly no matter how the byte stream is chunked,
/// and a stream ending mid-frame reports `Truncated`.
#[test]
fn frames_reassemble_under_adversarial_chunking() {
    let mut rng = Rng(0xC0FFEE);
    for round in 0..20 {
        let docs: Vec<String> = (0..5).map(|_| random_value(&mut rng, 2).render()).collect();
        let mut stream = Vec::new();
        for d in &docs {
            stream.extend_from_slice(d.as_bytes());
            stream.extend_from_slice(if round % 2 == 0 { b"\n" } else { b"\r\n" });
        }
        // Odd rounds also leave a truncated tail frame.
        if round % 2 == 1 {
            stream.extend_from_slice(b"{\"cut\":");
        }
        let mut frames = FrameReader::new(Trickle {
            data: &stream,
            pos: 0,
            rng: Rng(rng.next()),
        });
        for doc in &docs {
            let frame = frames.next_frame().unwrap().expect("frame present");
            assert_eq!(frame, doc.as_bytes());
        }
        match frames.next_frame() {
            Ok(None) => assert!(round % 2 == 0),
            Err(FrameError::Truncated { buffered }) => {
                assert!(round % 2 == 1);
                assert_eq!(buffered, b"{\"cut\":".len());
            }
            other => panic!("unexpected tail outcome: {other:?}"),
        }
    }
}

/// Oversized frames are cut off at the cap — the daemon's first line of
/// defense against a client streaming an unbounded line.
#[test]
fn oversized_frames_hit_the_cap_not_memory() {
    let mut data = vec![b'x'; 4096];
    data.push(b'\n');
    let mut frames = FrameReader::with_max_frame(&data[..], 64);
    match frames.next_frame() {
        Err(FrameError::TooLong { limit }) => assert_eq!(limit, 64),
        other => panic!("expected TooLong, got {other:?}"),
    }
}

// The default cap must fit real requests (compile-time check).
const _: () = assert!(MAX_FRAME_BYTES >= 1 << 20);
