//! Property-based tests over the whole stack: arbitrary sparse matrices,
//! tilings, plans and machine shapes must always produce gold-equivalent
//! results and respect the paper's structural invariants.

use proptest::prelude::*;

use spade::core::{
    BarrierPolicy, CMatrixPolicy, ExecutionPlan, PeCommand, Primitive, RMatrixPolicy, Schedule,
    SpadeSystem, SystemConfig,
};
use spade::matrix::{reference, Coo, DenseMatrix, TiledCoo, TilingConfig};

/// Strategy: a small random sparse matrix.
fn arb_coo(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (2usize..max_dim, 2usize..max_dim).prop_flat_map(move |(rows, cols)| {
        proptest::collection::vec(
            (0..rows as u32, 0..cols as u32, -2.0f32..2.0),
            0..max_nnz,
        )
        .prop_map(move |triplets| {
            Coo::from_triplets(rows, cols, &triplets).expect("triplets are in range")
        })
    })
}

fn arb_tiling() -> impl Strategy<Value = TilingConfig> {
    (1usize..40, 1usize..40)
        .prop_map(|(rp, cp)| TilingConfig::new(rp, cp).expect("nonzero panels"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiling_roundtrips_any_matrix(a in arb_coo(60, 200), t in arb_tiling()) {
        let tiled = TiledCoo::new(&a, t).unwrap();
        prop_assert_eq!(tiled.to_coo(), a);
        // Offsets are consistent: tiles tile the nnz space exactly.
        let total: usize = tiled.tiles().iter().map(|ti| ti.nnz).sum();
        prop_assert_eq!(total, tiled.nnz());
        for w in tiled.tiles().windows(2) {
            prop_assert_eq!(w[0].sparse_in_start + w[0].nnz, w[1].sparse_in_start);
            prop_assert!(w[1].sparse_out_start >= w[0].sparse_out_start + w[0].nnz);
        }
    }

    #[test]
    fn schedule_never_splits_row_panels(
        a in arb_coo(60, 200),
        t in arb_tiling(),
        num_pes in 1usize..9,
        barriers in prop_oneof![
            Just(BarrierPolicy::None),
            (1u32..4).prop_map(|g| BarrierPolicy::EveryColumnPanels { group: g })
        ],
    ) {
        let tiled = TiledCoo::new(&a, t).unwrap();
        let s = Schedule::build(&tiled, num_pes, Primitive::Spmm, barriers);
        // Every tile exactly once; row panel -> single PE.
        let mut owner = std::collections::HashMap::new();
        let mut seen = vec![false; tiled.tiles().len()];
        for pe in 0..num_pes {
            for cmd in s.commands(pe) {
                if let PeCommand::Tile { tile_idx } = cmd {
                    prop_assert!(!seen[*tile_idx]);
                    seen[*tile_idx] = true;
                    let rp = tiled.tiles()[*tile_idx].row_panel;
                    let prev = owner.insert(rp, pe);
                    prop_assert!(prev.is_none() || prev == Some(pe),
                        "row panel {} split across PEs", rp);
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn reference_spmm_linearity(a in arb_coo(30, 80)) {
        // SpMM is linear in B: A(B1 + B2) = AB1 + AB2.
        let k = 16;
        let b1 = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r + c) % 5) as f32);
        let b2 = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r * c) % 3) as f32);
        let sum = DenseMatrix::from_fn(a.num_cols(), k, |r, c| b1.get(r, c) + b2.get(r, c));
        let d1 = reference::spmm(&a, &b1);
        let d2 = reference::spmm(&a, &b2);
        let ds = reference::spmm(&a, &sum);
        for r in 0..a.num_rows() {
            for c in 0..k {
                prop_assert!((ds.get(r, c) - d1.get(r, c) - d2.get(r, c)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn sddmm_scales_with_sparse_values(a in arb_coo(30, 80)) {
        // Doubling the sampled values doubles the output.
        let k = 16;
        let b = DenseMatrix::from_fn(a.num_rows(), k, |r, c| ((r + 2 * c) % 7) as f32 * 0.5);
        let ct = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((2 * r + c) % 5) as f32 * 0.5);
        let v1 = reference::sddmm(&a, &b, &ct);
        let doubled = a.map_values(|_, _, v| 2.0 * v);
        let v2 = reference::sddmm(&doubled, &b, &ct);
        for (x, y) in v1.iter().zip(&v2) {
            prop_assert!((2.0 * x - y).abs() < 1e-3);
        }
    }
}

proptest! {
    // Full-system property tests are more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulated_spmm_equals_gold_for_any_matrix_and_plan(
        a in arb_coo(80, 300),
        rp in 1usize..40,
        cp in 1usize..80,
        r_policy in prop_oneof![
            Just(RMatrixPolicy::Cache),
            Just(RMatrixPolicy::Bypass),
            Just(RMatrixPolicy::BypassVictim)
        ],
        c_policy in prop_oneof![Just(CMatrixPolicy::Cache), Just(CMatrixPolicy::Bypass)],
        barriers in prop_oneof![
            Just(BarrierPolicy::None),
            Just(BarrierPolicy::per_column_panel())
        ],
    ) {
        let k = 32;
        let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r * 13 + c) % 9) as f32 * 0.25);
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(rp, cp).unwrap(),
            r_policy,
            c_policy,
            barriers,
        };
        let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
        let run = sys.run_spmm(&a, &b, &plan).unwrap();
        let gold = reference::spmm(&a, &b);
        prop_assert!(reference::dense_close(&run.output, &gold, 1e-3));
    }

    #[test]
    fn simulated_sddmm_equals_gold_for_any_matrix(
        a in arb_coo(80, 300),
        rp in 1usize..40,
        cp in 1usize..80,
    ) {
        let k = 32;
        let b = DenseMatrix::from_fn(a.num_rows(), k, |r, c| ((r + c * 3) % 11) as f32 * 0.2);
        let ct = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r * 7 + c) % 13) as f32 * 0.2);
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(rp, cp).unwrap(),
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::None,
        };
        let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
        let run = sys.run_sddmm(&a, &b, &ct, &plan).unwrap();
        let gold = reference::sddmm(&a, &b, &ct);
        prop_assert!(
            reference::first_mismatch(run.output.vals(), &gold, 1e-3).is_none()
        );
    }

    #[test]
    fn cpu_model_equals_gold_for_any_matrix(a in arb_coo(60, 200)) {
        let b = DenseMatrix::from_fn(a.num_cols(), 16, |r, c| ((r + c) % 7) as f32);
        let cpu = spade::baselines::cpu::CpuModel::new(
            spade::baselines::cpu::CpuConfig::small_test(3),
        );
        let run = cpu.run_spmm(&a, &b);
        prop_assert!(reference::dense_close(&run.output, &reference::spmm(&a, &b), 1e-4));
    }
}
