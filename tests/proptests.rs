//! Randomized property tests over the whole stack: arbitrary sparse
//! matrices, tilings, plans and machine shapes must always produce
//! gold-equivalent results and respect the paper's structural invariants.
//!
//! Cases are drawn from the workspace's own deterministic [`Rng64`]
//! stream (the workspace is dependency-free), so every run tests the
//! exact same inputs.

use spade::core::{
    BarrierPolicy, CMatrixPolicy, ExecutionPlan, PeCommand, Primitive, RMatrixPolicy, Schedule,
    SpadeSystem, SystemConfig,
};
use spade::matrix::rng::Rng64;
use spade::matrix::{reference, Coo, DenseMatrix, TiledCoo, TilingConfig};

/// A small random sparse matrix.
fn random_coo(rng: &mut Rng64, max_dim: usize, max_nnz: usize) -> Coo {
    let rows = rng.gen_range(2..max_dim);
    let cols = rng.gen_range(2..max_dim);
    let nnz = rng.gen_range(0..max_nnz);
    let triplets: Vec<(u32, u32, f32)> = (0..nnz)
        .map(|_| {
            (
                rng.gen_range(0..rows as u32),
                rng.gen_range(0..cols as u32),
                (rng.gen_f64() * 4.0 - 2.0) as f32,
            )
        })
        .collect();
    Coo::from_triplets(rows, cols, &triplets).expect("triplets are in range")
}

fn random_tiling(rng: &mut Rng64) -> TilingConfig {
    TilingConfig::new(rng.gen_range(1usize..40), rng.gen_range(1usize..40)).expect("nonzero panels")
}

#[test]
fn tiling_roundtrips_any_matrix() {
    let mut rng = Rng64::seed_from_u64(0x7111);
    for _ in 0..64 {
        let a = random_coo(&mut rng, 60, 200);
        let t = random_tiling(&mut rng);
        let tiled = TiledCoo::new(&a, t).unwrap();
        assert_eq!(tiled.to_coo(), a);
        // Offsets are consistent: tiles tile the nnz space exactly.
        let total: usize = tiled.tiles().iter().map(|ti| ti.nnz).sum();
        assert_eq!(total, tiled.nnz());
        for w in tiled.tiles().windows(2) {
            assert_eq!(w[0].sparse_in_start + w[0].nnz, w[1].sparse_in_start);
            assert!(w[1].sparse_out_start >= w[0].sparse_out_start + w[0].nnz);
        }
    }
}

#[test]
fn schedule_never_splits_row_panels() {
    let mut rng = Rng64::seed_from_u64(0x5c4e);
    for case in 0..64 {
        let a = random_coo(&mut rng, 60, 200);
        let t = random_tiling(&mut rng);
        let num_pes = rng.gen_range(1usize..9);
        let barriers = if rng.gen_bool(0.5) {
            BarrierPolicy::None
        } else {
            BarrierPolicy::EveryColumnPanels {
                group: rng.gen_range(1..4u32),
            }
        };
        let tiled = TiledCoo::new(&a, t).unwrap();
        let s = Schedule::build(&tiled, num_pes, Primitive::Spmm, barriers);
        // Every tile exactly once; row panel -> single PE.
        let mut owner = std::collections::HashMap::new();
        let mut seen = vec![false; tiled.tiles().len()];
        for pe in 0..num_pes {
            for cmd in s.commands(pe) {
                if let PeCommand::Tile { tile_idx } = cmd {
                    assert!(!seen[*tile_idx], "case {case}: tile replayed");
                    seen[*tile_idx] = true;
                    let rp = tiled.tiles()[*tile_idx].row_panel;
                    let prev = owner.insert(rp, pe);
                    assert!(
                        prev.is_none() || prev == Some(pe),
                        "case {case}: row panel {rp} split across PEs"
                    );
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "case {case}: tile dropped");
    }
}

#[test]
fn reference_spmm_linearity() {
    // SpMM is linear in B: A(B1 + B2) = AB1 + AB2.
    let mut rng = Rng64::seed_from_u64(0x11ea);
    for _ in 0..64 {
        let a = random_coo(&mut rng, 30, 80);
        let k = 16;
        let b1 = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r + c) % 5) as f32);
        let b2 = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r * c) % 3) as f32);
        let sum = DenseMatrix::from_fn(a.num_cols(), k, |r, c| b1.get(r, c) + b2.get(r, c));
        let d1 = reference::spmm(&a, &b1);
        let d2 = reference::spmm(&a, &b2);
        let ds = reference::spmm(&a, &sum);
        for r in 0..a.num_rows() {
            for c in 0..k {
                assert!((ds.get(r, c) - d1.get(r, c) - d2.get(r, c)).abs() < 1e-3);
            }
        }
    }
}

#[test]
fn sddmm_scales_with_sparse_values() {
    // Doubling the sampled values doubles the output.
    let mut rng = Rng64::seed_from_u64(0x5dd3);
    for _ in 0..64 {
        let a = random_coo(&mut rng, 30, 80);
        let k = 16;
        let b = DenseMatrix::from_fn(a.num_rows(), k, |r, c| ((r + 2 * c) % 7) as f32 * 0.5);
        let ct = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((2 * r + c) % 5) as f32 * 0.5);
        let v1 = reference::sddmm(&a, &b, &ct);
        let doubled = a.map_values(|_, _, v| 2.0 * v);
        let v2 = reference::sddmm(&doubled, &b, &ct);
        for (x, y) in v1.iter().zip(&v2) {
            assert!((2.0 * x - y).abs() < 1e-3);
        }
    }
}

#[test]
fn simulated_spmm_equals_gold_for_any_matrix_and_plan() {
    // Full-system property tests are more expensive: fewer cases.
    let mut rng = Rng64::seed_from_u64(0x901d);
    for case in 0..12 {
        let a = random_coo(&mut rng, 80, 300);
        let rp = rng.gen_range(1usize..40);
        let cp = rng.gen_range(1usize..80);
        let r_policy = match rng.bounded(3) {
            0 => RMatrixPolicy::Cache,
            1 => RMatrixPolicy::Bypass,
            _ => RMatrixPolicy::BypassVictim,
        };
        let c_policy = if rng.gen_bool(0.5) {
            CMatrixPolicy::Cache
        } else {
            CMatrixPolicy::Bypass
        };
        let barriers = if rng.gen_bool(0.5) {
            BarrierPolicy::None
        } else {
            BarrierPolicy::per_column_panel()
        };
        let k = 32;
        let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r * 13 + c) % 9) as f32 * 0.25);
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(rp, cp).unwrap(),
            r_policy,
            c_policy,
            barriers,
        };
        let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
        let run = sys.run_spmm(&a, &b, &plan).unwrap();
        let gold = reference::spmm(&a, &b);
        assert!(
            reference::dense_close(&run.output, &gold, 1e-3),
            "case {case}: SpMM diverged from gold under {plan:?}"
        );
    }
}

#[test]
fn simulated_sddmm_equals_gold_for_any_matrix() {
    let mut rng = Rng64::seed_from_u64(0x5dd2);
    for case in 0..12 {
        let a = random_coo(&mut rng, 80, 300);
        let rp = rng.gen_range(1usize..40);
        let cp = rng.gen_range(1usize..80);
        let k = 32;
        let b = DenseMatrix::from_fn(a.num_rows(), k, |r, c| ((r + c * 3) % 11) as f32 * 0.2);
        let ct = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r * 7 + c) % 13) as f32 * 0.2);
        let plan = ExecutionPlan {
            tiling: TilingConfig::new(rp, cp).unwrap(),
            r_policy: RMatrixPolicy::Cache,
            c_policy: CMatrixPolicy::Cache,
            barriers: BarrierPolicy::None,
        };
        let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
        let run = sys.run_sddmm(&a, &b, &ct, &plan).unwrap();
        let gold = reference::sddmm(&a, &b, &ct);
        assert!(
            reference::first_mismatch(run.output.vals(), &gold, 1e-3).is_none(),
            "case {case}: SDDMM diverged from gold"
        );
    }
}

#[test]
fn cpu_model_equals_gold_for_any_matrix() {
    let mut rng = Rng64::seed_from_u64(0xc930);
    for _ in 0..12 {
        let a = random_coo(&mut rng, 60, 200);
        let b = DenseMatrix::from_fn(a.num_cols(), 16, |r, c| ((r + c) % 7) as f32);
        let cpu =
            spade::baselines::cpu::CpuModel::new(spade::baselines::cpu::CpuConfig::small_test(3));
        let run = cpu.run_spmm(&a, &b);
        assert!(reference::dense_close(
            &run.output,
            &reference::spmm(&a, &b),
            1e-4
        ));
    }
}
