//! Failure-injection and edge-case tests: extreme queue sizes, degenerate
//! matrices, and minimal systems must still produce gold-equivalent
//! results (back-pressure correctness, not just the happy path).

use spade::core::{run_spmm_checked, ExecutionPlan, PipelineConfig, SpadeSystem, SystemConfig};
use spade::matrix::generators::{Benchmark, Scale};
use spade::matrix::{reference, Coo, DenseMatrix, TilingConfig};

fn dense(rows: usize, k: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, k, |r, c| ((r * 5 + c * 3) % 17) as f32 * 0.25 - 1.0)
}

/// The tightest pipeline that can still make progress: every queue at its
/// minimum.
fn strangled_pipeline() -> PipelineConfig {
    PipelineConfig {
        sparse_lq_entries: 1,
        top_queue_entries: 1,
        rs_entries: 1,
        dense_lq_entries: 2, // one vOp needs up to two loads in flight
        store_queue_entries: 1,
        vrf_regs: 4,
        ..PipelineConfig::table1()
    }
}

#[test]
fn minimal_queues_still_compute_correctly() {
    let a = Benchmark::Kro.generate(Scale::Tiny);
    let b = dense(a.num_cols(), 32);
    let mut cfg = SystemConfig::scaled(4);
    cfg.pipeline = strangled_pipeline();
    let mut sys = SpadeSystem::new(cfg);
    let run = run_spmm_checked(&mut sys, &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
    assert_eq!(run.report.total_vops, a.nnz() as u64 * 2);
}

#[test]
fn minimal_queues_sddmm_is_correct() {
    let a = Benchmark::Pap.generate(Scale::Tiny);
    let b = dense(a.num_rows(), 32);
    let c_t = dense(a.num_cols(), 32);
    let mut cfg = SystemConfig::scaled(4);
    cfg.pipeline = strangled_pipeline();
    let mut sys = SpadeSystem::new(cfg);
    let run = sys
        .run_sddmm(&a, &b, &c_t, &ExecutionPlan::sddmm_base(&a).unwrap())
        .unwrap();
    let gold = reference::sddmm(&a, &b, &c_t);
    assert!(reference::first_mismatch(run.output.vals(), &gold, 1e-3).is_none());
}

#[test]
fn k_equal_to_one_cache_line() {
    // K = 16: exactly one vOp per tuple, the smallest legal dense row.
    let a = Benchmark::Del.generate(Scale::Tiny);
    let b = dense(a.num_cols(), 16);
    let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
    let run = run_spmm_checked(&mut sys, &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
    assert_eq!(run.report.total_vops, a.nnz() as u64);
}

#[test]
fn one_by_one_matrix() {
    let a = Coo::from_triplets(1, 1, &[(0, 0, 3.0)]).unwrap();
    let b = dense(1, 16);
    let mut sys = SpadeSystem::new(SystemConfig::scaled(4));
    let run = run_spmm_checked(&mut sys, &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
    assert!((run.output.get(0, 0) - 3.0 * b.get(0, 0)).abs() < 1e-5);
}

#[test]
fn matrix_with_empty_rows_and_columns() {
    // Only two non-zeros in a 100x100 matrix: most tiles are empty.
    let a = Coo::from_triplets(100, 100, &[(7, 93, 2.0), (93, 7, -1.0)]).unwrap();
    let b = dense(100, 32);
    let plan = ExecutionPlan {
        tiling: TilingConfig::new(3, 5).unwrap(), // awkward panel sizes
        ..ExecutionPlan::spmm_base(&a).unwrap()
    };
    let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
    run_spmm_checked(&mut sys, &a, &b, &plan);
}

#[test]
fn single_nnz_per_tile_tiling() {
    let a = Benchmark::Roa.generate(Scale::Tiny);
    let b = dense(a.num_cols(), 16);
    // 1x1 tiles: one tile instruction per non-zero — the degenerate
    // extreme of "no upper/lower bound constraints on the tile size".
    let plan = ExecutionPlan {
        tiling: TilingConfig::new(1, 1).unwrap(),
        ..ExecutionPlan::spmm_base(&a).unwrap()
    };
    let mut cfg = SystemConfig::scaled(4);
    cfg.pipeline.instr_fetch_cycles = 1;
    let mut sys = SpadeSystem::new(cfg);
    // Keep it small: truncate to the first 2000 nnz worth of rows.
    let small = Coo::from_triplets(
        a.num_rows().min(1000),
        a.num_cols(),
        &a.iter()
            .filter(|&(r, _, _)| (r as usize) < a.num_rows().min(1000))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    run_spmm_checked(&mut sys, &small, &b, &plan);
}

#[test]
fn mini_spade_prototype_runs_both_kernels() {
    let a = Benchmark::Myc.generate(Scale::Tiny);
    let b = dense(a.num_rows().max(a.num_cols()), 16);
    let c_t = dense(a.num_cols(), 16);
    let mut sys = SpadeSystem::new(SystemConfig::mini_spade());
    let run = run_spmm_checked(&mut sys, &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
    assert!(run.report.cycles > 0);
    let sd = sys
        .run_sddmm(&a, &b, &c_t, &ExecutionPlan::sddmm_base(&a).unwrap())
        .unwrap();
    let gold = reference::sddmm(&a, &b, &c_t);
    assert!(reference::first_mismatch(sd.output.vals(), &gold, 1e-3).is_none());
}

#[test]
fn spmv_and_sddvv_follow_the_paper_extension() {
    let a = Benchmark::Kro.generate(Scale::Tiny);
    let x: Vec<f32> = (0..a.num_cols()).map(|i| (i % 11) as f32 * 0.1).collect();
    let y: Vec<f32> = (0..a.num_cols()).map(|i| (i % 7) as f32 * 0.2).collect();
    let mut sys = SpadeSystem::new(SystemConfig::scaled(8));

    let spmv = sys
        .run_spmv(&a, &x, &ExecutionPlan::spmm_base(&a).unwrap())
        .unwrap();
    let bx = DenseMatrix::from_fn(a.num_cols(), 1, |r, _| x[r]);
    let gold = reference::spmm(&a, &bx);
    for r in 0..a.num_rows() {
        assert!((spmv.output[r] - gold.get(r, 0)).abs() < 1e-3);
    }

    let sddvv = sys
        .run_sddvv(&a, &x, &y, &ExecutionPlan::sddmm_base(&a).unwrap())
        .unwrap();
    for (r, c, v) in sddvv.output.iter() {
        let orig = a
            .iter()
            .find(|&(rr, cc, _)| rr == r && cc == c)
            .expect("same structure")
            .2;
        assert!((v - orig * x[r as usize] * y[c as usize]).abs() < 1e-3);
    }
}

#[test]
fn zero_value_nonzeros_are_processed_not_skipped() {
    // Explicit zeros are sampling positions for SDDMM and must flow
    // through the pipeline like any non-zero.
    let a = Coo::from_triplets(8, 8, &[(1, 2, 0.0), (3, 4, 1.0)]).unwrap();
    let b = dense(8, 16);
    let c_t = dense(8, 16);
    let mut sys = SpadeSystem::new(SystemConfig::scaled(4));
    let run = sys
        .run_sddmm(&a, &b, &c_t, &ExecutionPlan::sddmm_base(&a).unwrap())
        .unwrap();
    assert_eq!(run.output.nnz(), 2);
    assert_eq!(run.output.vals()[0], 0.0);
    assert!(run.output.vals()[1].abs() > 0.0);
}

#[test]
fn wide_k_with_tiny_vrf_backpressures_correctly() {
    // K=128 needs 8 segments per tuple; a 6-register VRF forces constant
    // eviction/refill traffic without breaking RAW chains.
    let a = Benchmark::Myc.generate(Scale::Tiny);
    let b = dense(a.num_cols(), 128);
    let mut cfg = SystemConfig::scaled(4);
    cfg.pipeline.vrf_regs = 6;
    let mut sys = SpadeSystem::new(cfg);
    run_spmm_checked(&mut sys, &a, &b, &ExecutionPlan::spmm_base(&a).unwrap());
}
