//! Whole-system integration tests: every machine model in the workspace
//! runs the same workloads and is validated against the gold kernels.

use spade::core::{
    run_sddmm_checked, run_spmm_checked, BarrierPolicy, CMatrixPolicy, ExecutionPlan, Primitive,
    RMatrixPolicy, SpadeSystem, SystemConfig,
};
use spade::matrix::generators::{Benchmark, Scale};
use spade::matrix::{reference, DenseMatrix, TilingConfig};

fn dense_for(a: &spade::matrix::Coo, k: usize) -> DenseMatrix {
    DenseMatrix::from_fn(a.num_rows().max(a.num_cols()), k, |r, c| {
        ((r * 31 + c * 7) % 23) as f32 * 0.0625 - 0.5
    })
}

#[test]
fn spade_matches_gold_on_every_benchmark_spmm() {
    for b in Benchmark::ALL {
        let a = b.generate(Scale::Tiny);
        let bm = dense_for(&a, 32);
        let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
        let plan = ExecutionPlan::spmm_base(&a).unwrap();
        let run = run_spmm_checked(&mut sys, &a, &bm, &plan);
        assert!(run.report.cycles > 0, "{}", b.short_name());
        assert_eq!(run.report.total_nnz, a.nnz() as u64);
    }
}

#[test]
fn spade_matches_gold_on_every_benchmark_sddmm() {
    for b in Benchmark::ALL {
        let a = b.generate(Scale::Tiny);
        let bm = dense_for(&a, 32);
        let ct = dense_for(&a, 32);
        let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
        let plan = ExecutionPlan::sddmm_base(&a).unwrap();
        let run = run_sddmm_checked(&mut sys, &a, &bm, &ct, &plan);
        assert_eq!(run.output.nnz(), a.nnz(), "{}", b.short_name());
    }
}

#[test]
fn all_plan_knob_combinations_stay_correct() {
    let a = Benchmark::Kro.generate(Scale::Tiny);
    let bm = dense_for(&a, 32);
    for rp in [4usize, 64] {
        for cp in [128usize, usize::MAX] {
            for r_policy in [
                RMatrixPolicy::Cache,
                RMatrixPolicy::Bypass,
                RMatrixPolicy::BypassVictim,
            ] {
                for barriers in [BarrierPolicy::None, BarrierPolicy::per_column_panel()] {
                    let plan = ExecutionPlan {
                        tiling: TilingConfig::new(rp, cp.min(a.num_cols())).unwrap(),
                        r_policy,
                        c_policy: CMatrixPolicy::Cache,
                        barriers,
                    };
                    let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
                    run_spmm_checked(&mut sys, &a, &bm, &plan);
                }
            }
        }
    }
}

#[test]
fn table4_configs_stay_correct_and_progress_in_performance() {
    let a = Benchmark::Del.generate(Scale::Tiny);
    let bm = dense_for(&a, 32);
    let base = SystemConfig::scaled(16);
    let plan = ExecutionPlan {
        tiling: TilingConfig::new(8, a.num_cols()).unwrap(),
        r_policy: RMatrixPolicy::Cache,
        c_policy: CMatrixPolicy::Cache,
        barriers: BarrierPolicy::None,
    };
    let mut times = Vec::new();
    for level in 0..=4u8 {
        let cfg = SystemConfig::table4_cfg(&base, level);
        let mut sys = SpadeSystem::new(cfg);
        let run = run_spmm_checked(&mut sys, &a, &bm, &plan);
        times.push(run.report.time_ns);
    }
    // The paper's progression: CFG4 (full featured) beats CFG0.
    assert!(
        times[4] < times[0],
        "CFG4 {}ns should beat CFG0 {}ns",
        times[4],
        times[0]
    );
}

#[test]
fn cpu_gpu_sextans_agree_functionally() {
    let a = Benchmark::Pap.generate(Scale::Tiny);
    let bm = dense_for(&a, 32);
    let gold = reference::spmm(&a, &bm);

    let cpu = spade::baselines::cpu::CpuModel::new(spade::baselines::cpu::CpuConfig::small_test(4));
    assert!(reference::dense_close(
        &cpu.run_spmm(&a, &bm).output,
        &gold,
        1e-4
    ));

    let gpu = spade::baselines::gpu::GpuModel::new(spade::baselines::gpu::GpuConfig::v100());
    assert!(reference::dense_close(
        &gpu.run_spmm(&a, &bm).output,
        &gold,
        1e-4
    ));

    let sx = spade::baselines::sextans::SextansModel::new(
        spade::baselines::sextans::SextansConfig::idealized(),
    );
    assert!(reference::dense_close(
        &sx.run_spmm(&a, &bm).output,
        &gold,
        1e-4
    ));

    let threaded = spade::baselines::cpu_ref::spmm_threaded(&a, &bm, 4);
    assert!(reference::dense_close(&threaded.output, &gold, 1e-4));
}

#[test]
fn scaled_up_system_is_not_slower_on_parallel_work() {
    // A mesh has abundant row panels: doubling the machine must help.
    let a = Benchmark::Del.generate(Scale::Tiny);
    let bm = dense_for(&a, 32);
    let plan = ExecutionPlan {
        tiling: TilingConfig::new(8, a.num_cols()).unwrap(),
        r_policy: RMatrixPolicy::Cache,
        c_policy: CMatrixPolicy::Cache,
        barriers: BarrierPolicy::None,
    };
    let base = SystemConfig::scaled(16);
    let t1 = run_spmm_checked(&mut SpadeSystem::new(base.clone()), &a, &bm, &plan)
        .report
        .time_ns;
    let t2 = run_spmm_checked(&mut SpadeSystem::new(base.scaled_up(2)), &a, &bm, &plan)
        .report
        .time_ns;
    assert!(t2 < t1, "2x system {t2}ns vs base {t1}ns");
}

#[test]
fn k128_and_k32_both_validate() {
    let a = Benchmark::Ser.generate(Scale::Tiny);
    for k in [32usize, 128] {
        let bm = dense_for(&a, k);
        let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
        let plan = ExecutionPlan::spmm_base(&a).unwrap();
        let run = run_spmm_checked(&mut sys, &a, &bm, &plan);
        assert_eq!(
            run.report.total_vops,
            a.nnz() as u64 * (k / 16) as u64,
            "K={k}"
        );
    }
}

#[test]
fn energy_model_consumes_reports() {
    let a = Benchmark::Kro.generate(Scale::Tiny);
    let bm = dense_for(&a, 32);
    let mut sys = SpadeSystem::new(SystemConfig::scaled(8));
    let run = run_spmm_checked(&mut sys, &a, &bm, &ExecutionPlan::spmm_base(&a).unwrap());
    let breakdown = spade::energy::EnergyModel::spade_10nm().power_breakdown(&run.report, 8);
    assert!(breakdown.total_w() > 0.0);
    let f = breakdown.fractions();
    assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // DRAM dominates SPADE-mode power (Figure 14).
    assert!(f[3] > 0.3, "DRAM fraction {}", f[3]);
}

#[test]
fn primitive_display_names() {
    assert_eq!(Primitive::Spmm.to_string(), "SpMM");
    assert_eq!(Primitive::Sddmm.to_string(), "SDDMM");
}
