//! # SPADE — a flexible and scalable accelerator for SpMM and SDDMM
//!
//! This workspace reproduces the system described in *SPADE: A Flexible and
//! Scalable Accelerator for SpMM and SDDMM* (ISCA 2023) as a full-system
//! simulation in Rust. This facade crate re-exports the sub-crates:
//!
//! * [`matrix`] — sparse formats, Appendix-A tiling, synthetic benchmark
//!   graphs, structure analysis, gold kernels.
//! * [`sim`] — the memory-system substrate: caches, bypass buffers, DRAM
//!   channels, on-chip links, TLBs, and the cycle engine.
//! * [`core`] — the SPADE accelerator itself: tile ISA, control processing
//!   element, PE pipeline, and the integrated multicore system.
//! * [`baselines`] — the machines SPADE is compared against: a simulated
//!   Ice Lake multicore, a V100 roofline model, an idealized Sextans
//!   accelerator, and the PCIe transfer model.
//! * [`energy`] — CACTI-style area/power/energy estimation.
//!
//! # Quickstart
//!
//! ```
//! use spade::core::{SpadeSystem, SystemConfig, ExecutionPlan};
//! use spade::matrix::{generators::{Benchmark, Scale}, DenseMatrix, reference};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small Kronecker graph and run SpMM with K = 32 on a
//! // scaled-down SPADE system.
//! let a = Benchmark::Kro.generate(Scale::Tiny);
//! let b = DenseMatrix::from_fn(a.num_cols(), 32, |r, c| (r + c) as f32 * 0.01);
//!
//! let config = SystemConfig::scaled(8); // 8 PEs
//! let plan = ExecutionPlan::spmm_base(&a)?;
//! let mut system = SpadeSystem::new(config);
//! let result = system.run_spmm(&a, &b, &plan)?;
//!
//! // The simulated result matches the gold kernel.
//! let gold = reference::spmm(&a, &b);
//! assert!(reference::dense_close(&result.output, &gold, 1e-3));
//! println!("cycles: {}", result.report.cycles);
//! # Ok(())
//! # }
//! ```

pub use spade_baselines as baselines;
pub use spade_core as core;
pub use spade_energy as energy;
pub use spade_matrix as matrix;
pub use spade_sim as sim;
