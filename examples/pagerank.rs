//! PageRank on SPADE via the SpMV extension (§9 of the paper).
//!
//! ```text
//! cargo run --release -p spade --example pagerank
//! ```
//!
//! The paper's future-work section notes that SPADE "can already support
//! Sparse Matrix Vector Multiplication (SpMV)". This example exercises
//! that primitive: power iteration of PageRank, where each iteration is
//! one SpMV on the column-normalized adjacency matrix, interleaved with a
//! CPU-mode rank update — the fine-grain CPU↔accelerator interleaving
//! that SPADE's tight coupling makes cheap.

use spade::core::{advisor, ExecutionPlan, SpadeSystem, SystemConfig};
use spade::matrix::generators::{Benchmark, Scale};
use spade::matrix::Coo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Benchmark::Kro.generate(Scale::Tiny);
    let n = graph.num_rows();
    let damping = 0.85f32;
    println!(
        "PageRank on {} ({} vertices, {} edges)",
        Benchmark::Kro.full_name(),
        n,
        graph.nnz()
    );

    // Column-normalize: A[r, c] = 1 / outdegree(c), so that rank flows
    // from c to its neighbours r.
    let mut outdeg = vec![0u32; n];
    for (_, c, _) in graph.iter() {
        outdeg[c as usize] += 1;
    }
    let a: Coo = graph.map_values(|_, c, _| 1.0 / outdeg[c as usize].max(1) as f32);

    let system_config = SystemConfig::scaled(56);
    // Let the inspector pick the knobs from the matrix structure (§4.2).
    let plan: ExecutionPlan = advisor::advise(&a, 1, &system_config)?;
    println!(
        "advised plan: RP={} CP={} rMatrix={:?} barriers={}",
        plan.tiling.row_panel_size,
        plan.tiling.col_panel_size,
        plan.r_policy,
        plan.barriers.is_enabled()
    );

    let mut system = SpadeSystem::new(system_config);
    system.keep_warm(true); // iterative kernel: caches stay warm across iterations

    let mut rank = vec![1.0f32 / n as f32; n];
    let mut total_cycles = 0u64;
    let iterations = 12;
    for iter in 0..iterations {
        // SPADE-mode: spread = A · rank.
        let run = system.run_spmv(&a, &rank, &plan)?;
        total_cycles += run.report.cycles;
        // CPU-mode: damping, teleportation, and redistribution of the
        // rank mass sitting on dangling vertices (no out-edges).
        let dangling: f32 = rank
            .iter()
            .zip(&outdeg)
            .filter(|(_, &d)| d == 0)
            .map(|(r, _)| r)
            .sum();
        let mut delta = 0f32;
        for (r, s) in rank.iter_mut().zip(&run.output) {
            let next = (1.0 - damping) / n as f32 + damping * (s + dangling / n as f32);
            delta += (next - *r).abs();
            *r = next;
        }
        if iter % 4 == 3 {
            println!("iter {:>2}: L1 delta = {delta:.6}", iter + 1);
        }
        if delta < 1e-6 {
            println!("converged after {} iterations", iter + 1);
            break;
        }
    }

    let sum: f32 = rank.iter().sum();
    let mut top: Vec<(usize, f32)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nrank mass {sum:.4} (should stay ≈ 1)");
    println!("top vertices: {:?}", &top[..5.min(top.len())]);
    println!(
        "SPADE-mode total: {} cycles ({:.1} µs at 0.8 GHz) across {} SpMV sections",
        total_cycles,
        total_cycles as f64 / 800.0,
        iterations
    );
    assert!((sum - 1.0).abs() < 1e-2, "rank mass must be conserved");
    Ok(())
}
