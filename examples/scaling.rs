//! Strong scaling of a SPADE system (the Figure 12 experiment in
//! miniature).
//!
//! ```text
//! cargo run --release --example scaling
//! ```
//!
//! Doubling a SPADE system (2× PEs, DRAM bandwidth, LLC and link latency)
//! should roughly halve execution time — unless the matrix has too few
//! row panels to keep the PEs busy, the load-imbalance exception the
//! paper observes for MYC and KRO.

use spade::core::{ExecutionPlan, Primitive, SpadeSystem, SystemConfig};
use spade::matrix::generators::{Benchmark, Scale};
use spade::matrix::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 32;
    let base = SystemConfig::scaled(28);

    println!("strong scaling, SpMM K={k} (base: {} PEs)\n", base.num_pes);
    println!(
        "{:<6} {:>10} {:>8} {:>8} {:>8}",
        "graph", "base (µs)", "2x", "4x", "ideal"
    );
    for bench in [Benchmark::Del, Benchmark::Pac, Benchmark::Myc] {
        let a = bench.generate(Scale::Tiny);
        let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r + c) % 9) as f32 * 0.2);
        // Row panels sized so the base system has plenty of panels per PE
        // (the paper's 256-row panels assume multi-million-row matrices).
        let mut plan = ExecutionPlan::spmm_base(&a)?;
        plan.tiling = spade::matrix::TilingConfig::new(8, a.num_cols().max(1))?;
        let _ = Primitive::Spmm;

        let t_base = SpadeSystem::new(base.clone())
            .run_spmm(&a, &b, &plan)?
            .report
            .time_ns;
        let mut speedups = Vec::new();
        for factor in [2usize, 4] {
            let cfg = base.scaled_up(factor);
            let t = SpadeSystem::new(cfg)
                .run_spmm(&a, &b, &plan)?
                .report
                .time_ns;
            speedups.push(t_base / t);
        }
        println!(
            "{:<6} {:>10.1} {:>7.2}x {:>7.2}x {:>8}",
            bench.short_name(),
            t_base / 1e3,
            speedups[0],
            speedups[1],
            "2x/4x"
        );
    }
    println!("\nMYC has very few rows (load imbalance), so it scales worst — the");
    println!("same exception the paper reports in its Figure 12.");
    Ok(())
}
