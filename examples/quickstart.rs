//! Quickstart: run SpMM on a SPADE system and validate the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small Kronecker graph (a stand-in for `kron_g500`), runs
//! `D = A × B` with K = 32 on a scaled-down 56-PE SPADE, checks the
//! simulated output against the gold kernel, and prints the run report.

use spade::core::{ExecutionPlan, SpadeSystem, SystemConfig};
use spade::matrix::generators::{Benchmark, Scale};
use spade::matrix::{reference, DenseMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A sparse input matrix: ~1.5k-row Kronecker graph.
    let a = Benchmark::Kro.generate(Scale::Tiny);
    println!(
        "A: {}x{} with {} non-zeros ({})",
        a.num_rows(),
        a.num_cols(),
        a.nnz(),
        Benchmark::Kro.full_name()
    );

    // 2. A dense input matrix with K = 32 columns (two cache lines/row).
    let k = 32;
    let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r + c) % 13) as f32 * 0.25);

    // 3. A 56-PE SPADE system and the SPADE Base execution plan.
    let mut system = SpadeSystem::new(SystemConfig::scaled(56));
    let plan = ExecutionPlan::spmm_base(&a)?;

    // 4. Run and validate.
    let run = system.run_spmm(&a, &b, &plan)?;
    let gold = reference::spmm(&a, &b);
    assert!(
        reference::dense_close(&run.output, &gold, 1e-3),
        "simulated result diverged from the gold kernel"
    );

    println!("\nSPADE-mode section completed and validated:");
    println!("  cycles            : {}", run.report.cycles);
    println!("  time              : {:.1} µs", run.report.time_ns / 1e3);
    println!("  vOps executed     : {}", run.report.total_vops);
    println!("  DRAM accesses     : {}", run.report.dram_accesses);
    println!("  LLC accesses      : {}", run.report.llc_accesses);
    println!("  requests / cycle  : {:.2}", run.report.requests_per_cycle);
    println!("  DRAM bandwidth    : {:.1} GB/s", run.report.achieved_gbps);
    println!("  effective GFLOP/s : {:.1}", run.report.spmm_gflops(k));
    println!(
        "  termination cost  : {:.2}% of SPADE-mode time",
        run.report.termination_fraction() * 100.0
    );
    Ok(())
}
