//! Auto-tuning SPADE's flexibility knobs — the `SPADE Opt` methodology.
//!
//! ```text
//! cargo run --release --example autotune
//! ```
//!
//! SPADE's tile ISA exposes three knobs: tile row/column panel sizes,
//! rMatrix cache bypassing, and scheduling barriers (§4.2–4.3). The best
//! setting depends on the input's sparsity structure (§7.C). This example
//! searches a Table 3-shaped space for two structurally opposite graphs
//! and shows how the winning plans differ.

use spade::core::{ExecutionPlan, PlanSearchSpace, RMatrixPolicy, SpadeSystem, SystemConfig};
use spade::matrix::analysis::MatrixStats;
use spade::matrix::generators::{Benchmark, Scale};
use spade::matrix::DenseMatrix;

fn describe(plan: &ExecutionPlan, ncols: usize) -> String {
    format!(
        "RP={:<5} CP={:<7} rMatrix={:<13} barriers={}",
        plan.tiling.row_panel_size,
        if plan.tiling.col_panel_size >= ncols {
            "all".to_string()
        } else {
            plan.tiling.col_panel_size.to_string()
        },
        format!("{:?}", plan.r_policy),
        plan.barriers.is_enabled()
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 32;
    let system_config = SystemConfig::scaled(56);

    for bench in [Benchmark::Kro, Benchmark::Roa] {
        let a = bench.generate(Scale::Tiny);
        let stats = MatrixStats::compute(&a);
        println!(
            "\n=== {} ({}; RU={}) — {} rows, {} nnz ===",
            bench.short_name(),
            bench.domain(),
            stats.classify_ru(),
            a.num_rows(),
            a.nnz()
        );
        let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r + c) % 9) as f32 * 0.2);

        // A compact search space scaled to this example's matrix sizes.
        let space = PlanSearchSpace {
            row_panels: vec![4, 16, 64],
            col_panels: vec![256, 2_048, usize::MAX],
            r_policies: vec![RMatrixPolicy::Cache, RMatrixPolicy::BypassVictim],
            barrier_col_panel: 2_048,
        };

        let mut results: Vec<(ExecutionPlan, u64)> = Vec::new();
        for plan in space.enumerate(&a) {
            let mut sys = SpadeSystem::new(system_config.clone());
            let run = sys.run_spmm(&a, &b, &plan)?;
            results.push((plan, run.report.cycles));
        }
        results.sort_by_key(|&(_, cycles)| cycles);

        let (best, best_cycles) = &results[0];
        let (worst, worst_cycles) = &results[results.len() - 1];
        println!("tried {} plans", results.len());
        println!(
            "  best : {}  ({} cycles)",
            describe(best, a.num_cols()),
            best_cycles
        );
        println!(
            "  worst: {}  ({} cycles, {:.2}x slower)",
            describe(worst, a.num_cols()),
            worst_cycles,
            *worst_cycles as f64 / *best_cycles as f64
        );
        for (plan, cycles) in results.iter().take(3) {
            println!(
                "  top  : {}  ({:.2}x of best)",
                describe(plan, a.num_cols()),
                *cycles as f64 / *best_cycles as f64
            );
        }
    }
    println!("\nThe winning knobs differ per structure — the paper's case for a");
    println!("programmable (rather than fixed-function) SpMM/SDDMM accelerator.");
    Ok(())
}
