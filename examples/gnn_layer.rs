//! A GNN message-passing layer on SPADE: interleaved SDDMM + SpMM.
//!
//! ```text
//! cargo run --release --example gnn_layer
//! ```
//!
//! Graph neural networks alternate edge-wise and vertex-wise aggregation
//! (§1 of the paper): attention-style edge scores are an SDDMM over the
//! adjacency structure, and neighbourhood aggregation is an SpMM with the
//! scored adjacency matrix. This example runs one such layer on a SPADE
//! system, exercising the CPU↔SPADE mode transitions between kernels, and
//! validates both against the gold kernels.

use spade::core::{ExecutionPlan, SpadeSystem, SystemConfig};
use spade::matrix::generators::{Benchmark, Scale};
use spade::matrix::{reference, Coo, DenseMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The graph: a social network stand-in; features: K = 32 per vertex.
    let adj = Benchmark::Liv.generate(Scale::Tiny);
    let k = 32;
    let n = adj.num_rows();
    println!("graph: {} vertices, {} edges, K={k}", n, adj.nnz());

    // Vertex features H and attention projections Q = H·Wq, V = H·Wv.
    // (The dense projections are CPU-mode work; we materialize them
    // directly.)
    let h_q = DenseMatrix::from_fn(n, k, |r, c| ((r * 7 + c) % 11) as f32 * 0.1 - 0.5);
    let h_v = DenseMatrix::from_fn(n, k, |r, c| ((r * 3 + 2 * c) % 13) as f32 * 0.1 - 0.6);

    let mut system = SpadeSystem::new(SystemConfig::scaled(56));
    // Keep caches warm across the two SPADE-mode sections, like a fused
    // GNN layer would (the CPU only touches the dense matrices between
    // kernels).
    system.keep_warm(true);

    // ── SPADE-mode section 1: edge scores via SDDMM ──────────────────────
    // e(u,v) = A[u,v] · ⟨Q[u,:], Q[v,:]⟩ for every edge.
    let plan = ExecutionPlan::sddmm_base(&adj)?;
    let scores = system.run_sddmm(&adj, &h_q, &h_q, &plan)?;
    let gold_scores = reference::sddmm(&adj, &h_q, &h_q);
    assert!(
        reference::first_mismatch(scores.output.vals(), &gold_scores, 1e-3).is_none(),
        "SDDMM diverged"
    );
    println!(
        "SDDMM edge scoring : {:>10} cycles, {:>6.1} µs, {} DRAM accesses",
        scores.report.cycles,
        scores.report.time_ns / 1e3,
        scores.report.dram_accesses
    );

    // ── CPU-mode section: normalize the scores (softmax-ish scaling) ─────
    let max_abs = scores
        .output
        .vals()
        .iter()
        .fold(0f32, |m, v| m.max(v.abs()))
        .max(1e-6);
    let scored: Coo = scores.output.map_values(|_, _, v| v / max_abs);

    // ── SPADE-mode section 2: neighbourhood aggregation via SpMM ─────────
    // H' = Â × V.
    let plan = ExecutionPlan::spmm_base(&scored)?;
    let aggregated = system.run_spmm(&scored, &h_v, &plan)?;
    let gold_agg = reference::spmm(&scored, &h_v);
    assert!(
        reference::dense_close(&aggregated.output, &gold_agg, 1e-3),
        "SpMM diverged"
    );
    println!(
        "SpMM aggregation   : {:>10} cycles, {:>6.1} µs, {} DRAM accesses",
        aggregated.report.cycles,
        aggregated.report.time_ns / 1e3,
        aggregated.report.dram_accesses
    );

    let total_ns = scores.report.time_ns + aggregated.report.time_ns;
    let transition_ns = scores.report.termination_cycles as f64 / 0.8
        + aggregated.report.termination_cycles as f64 / 0.8;
    println!(
        "\nlayer total {:.1} µs; mode-transition overhead {:.2}% (paper §7.D: ~0.2–3.4%)",
        total_ns / 1e3,
        transition_ns / total_ns * 100.0
    );
    println!("one GNN layer validated end to end");
    Ok(())
}
