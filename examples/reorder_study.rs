//! Matrix reordering × SPADE: composing an orthogonal technique (§8.E).
//!
//! ```text
//! cargo run --release -p spade --example reorder_study
//! ```
//!
//! The paper classifies input-aware reordering as orthogonal to SPADE:
//! better locality in the matrix means better cache behaviour for any
//! execution plan. This study scrambles a mesh (destroying its natural
//! locality), then measures SpMM time under the original, scrambled,
//! RCM-restored and degree-sorted orderings on the same SPADE system.

use spade::core::{ExecutionPlan, SpadeSystem, SystemConfig};
use spade::matrix::analysis::MatrixStats;
use spade::matrix::generators;
use spade::matrix::reorder::{degree_order, reverse_cuthill_mckee, Permutation};
use spade::matrix::{Coo, DenseMatrix};

/// A 28-PE system whose caches are small relative to this example's
/// matrix, so ordering-driven locality actually shows up in the timing
/// (the full Table 1 hierarchy would swallow a 3k-row mesh whole).
fn tight_system() -> SystemConfig {
    let mut cfg = SystemConfig::scaled(28);
    cfg.mem.l1 = spade::sim::CacheConfig::new(8 * 1024, 8);
    cfg.mem.l2 = spade::sim::CacheConfig::new(16 * 1024, 8);
    cfg.mem.llc = spade::sim::CacheConfig::new(64 * 1024, 8);
    cfg
}

fn measure(label: &str, a: &Coo, k: usize) -> Result<u64, Box<dyn std::error::Error>> {
    let b = DenseMatrix::from_fn(a.num_cols(), k, |r, c| ((r + c) % 9) as f32 * 0.25);
    let mut sys = SpadeSystem::new(tight_system());
    let mut plan = ExecutionPlan::spmm_base(a)?;
    plan.tiling = spade::matrix::TilingConfig::new(8, a.num_cols().max(1))?;
    let run = sys.run_spmm(a, &b, &plan)?;
    let stats = MatrixStats::compute(a);
    println!(
        "{label:<12} bandwidth={:.4}  cycles={:>8}  DRAM={:>7}  {:>6.1} GB/s",
        stats.normalized_bandwidth,
        run.report.cycles,
        run.report.dram_accesses,
        run.report.achieved_gbps
    );
    Ok(run.report.cycles)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 32;
    let mesh = generators::mesh2d(56, 56);
    let n = mesh.num_rows() as u32;
    println!(
        "mesh2d 56x56: {} rows, {} nnz, K={k} on a 28-PE SPADE\n",
        mesh.num_rows(),
        mesh.nnz()
    );

    // Scramble with a fixed affine permutation (1103 is coprime with n =
    // 3136, and far from ±1 mod n, so mesh neighbours scatter widely).
    let scramble = Permutation::new((0..n).map(|i| (i * 1103 + 11) % n).collect())?;
    let scrambled = scramble.permute_symmetric(&mesh);

    let natural = measure("natural", &mesh, k)?;
    let broken = measure("scrambled", &scrambled, k)?;
    let rcm = reverse_cuthill_mckee(&scrambled).permute_symmetric(&scrambled);
    let restored = measure("rcm", &rcm, k)?;
    let by_degree = degree_order(&scrambled).permute_symmetric(&scrambled);
    let _ = measure("degree-sort", &by_degree, k)?;

    println!(
        "\nscrambling cost {:.2}x; RCM recovers to {:.2}x of natural",
        broken as f64 / natural as f64,
        restored as f64 / natural as f64
    );
    assert!(restored < broken, "RCM must beat the scrambled ordering");
    println!("reordering composes with SPADE exactly as §8.E suggests");
    Ok(())
}
