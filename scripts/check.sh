#!/usr/bin/env bash
# Full local gate: formatting, lints and the test suite.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q

echo "== fault-injection stress (release, auditor on)"
SPADE_AUDIT=1 cargo test --release -p spade-core --test fault_injection -q

echo "All checks passed."
