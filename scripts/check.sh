#!/usr/bin/env bash
# Full local gate: formatting, lints and the test suite.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test --workspace -q

echo "== fault-injection stress (release, auditor on)"
SPADE_AUDIT=1 cargo test --release -p spade-core --test fault_injection -q

echo "== multi-shard equivalence (SPADE_SIM_SHARDS=4)"
# Every simulation split across 4 host shards via the environment knob:
# results must stay bit-identical to the sequential drivers everywhere.
SPADE_SIM_SHARDS=4 cargo test -p spade-bench --test sharded_equivalence -q
SPADE_SIM_SHARDS=4 cargo test -p spade-bench --test scheduler_equivalence -q

echo "== trace smoke + golden-file check"
# The trace format contains no wall-clock values, so the emitted bytes are
# fully deterministic: any drift against the committed golden file is a
# behavior change that must be reviewed. After an *intentional* change,
# regenerate with `SPADE_UPDATE_GOLDEN=1 scripts/check.sh` and commit the
# new golden file.
golden=tests/golden/trace_smoke.trace.json
smoke=$(mktemp /tmp/spade_trace_smoke.XXXXXX.json)
bench_out=$(mktemp /tmp/spade_bench_perf.XXXXXX.json)
trap 'rm -f "$smoke" "$bench_out"' EXIT
cargo run -q -p spade-cli -- trace myc --scale tiny --k 16 --pes 4 \
  --window 256 --out "$smoke"
if [ "${SPADE_UPDATE_GOLDEN:-0}" = "1" ]; then
  cp "$smoke" "$golden"
  echo "updated $golden"
elif ! cmp -s "$smoke" "$golden"; then
  echo "error: trace output drifted from $golden" >&2
  diff "$golden" "$smoke" | head -20 >&2 || true
  echo "if the change is intentional: SPADE_UPDATE_GOLDEN=1 scripts/check.sh" >&2
  exit 1
fi

echo "== bench-perf regression gate (release)"
# Event-driven vs naive driver, the memory fast path vs the forced slow
# path, and the sharded driver vs sequential: all three are
# equivalence-checked on every run, and the speedup figures must stay
# above the committed floors (measured headroom: ~1.45x event-driver and
# ~1.1-1.3x memory-path on the tiny suite). The shard gate downgrades
# itself to a warning on hosts with fewer cores than shards.
cargo build --release -q -p spade-cli
./target/release/spade-cli bench-perf --scale tiny --k 32 --pes 8 \
  --gate-speedup 1.3 --gate-mem-speedup 1.05 \
  --shards 4 --gate-shard-speedup 1.5 --out "$bench_out" >/dev/null

echo "== bench-advise quality gate (release)"
# Millisecond plan selection vs the simulated ground truth: per-benchmark
# leave-one-out cost models, selection latency vs quick find_opt (gated
# >= 100x — advise never simulates) and selected-plan cycles vs the
# exhaustive optimum (gated <= 1.05x geomean). Model and accuracy report
# land next to the summary for inspection.
advise_model=$(mktemp /tmp/spade_advise.XXXXXX.model)
advise_report=$(mktemp /tmp/spade_advise_acc.XXXXXX.json)
trap 'rm -f "$smoke" "$bench_out" "$advise_model" "$advise_report"' EXIT
./target/release/spade-cli bench-advise --scale tiny --k 32 --pes 8 \
  --gate-advise-speedup 100 --gate-advise-quality 1.05 \
  --out "$bench_out" --model-out "$advise_model" \
  --report-out "$advise_report" >/dev/null

echo "== daemon smoke (serve/client, cache hit, SIGTERM drain)"
# A real `spade-cli serve` process driven over TCP: cold run, cache hit
# byte-identity, malformed-frame rejection, concurrent burst, graceful
# SIGTERM drain. Keeps its cache directory on failure for postmortem.
scripts/serve_smoke.sh ./target/release/spade-cli

echo "All checks passed."
