#!/usr/bin/env bash
# End-to-end smoke test for the experiment daemon (`spade-cli serve`):
# starts a real daemon on an OS-assigned port, drives it with
# `spade-cli client`, and checks the robustness contract from the
# outside — cold run, byte-identical cache hit, malformed-frame
# rejection, a concurrent burst, and a SIGTERM drain that exits 0.
#
# Usage: scripts/serve_smoke.sh [path-to-spade-cli]
# The cache directory is kept on failure (its path is printed) so CI can
# upload it as an artifact for postmortem.
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=${1:-./target/release/spade-cli}
if [ ! -x "$CLI" ]; then
  echo "== building release spade-cli"
  cargo build --release -q -p spade-cli
fi

CACHE_DIR=$(mktemp -d /tmp/spade_serve_smoke.XXXXXX)
LOG="$CACHE_DIR/serve.log"
DAEMON_PID=""

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$LOG" >&2 || true
  echo "--- cache dir kept at $CACHE_DIR ---" >&2
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  exit 1
}

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
}
trap cleanup EXIT

echo "== starting daemon (port 0, cache at $CACHE_DIR)"
"$CLI" serve --addr 127.0.0.1:0 --cache-dir "$CACHE_DIR" \
  --read-timeout-ms 50 >"$LOG" &
DAEMON_PID=$!

# The banner line announces the actual address.
for _ in $(seq 1 100); do
  [ -s "$LOG" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died before banner"
  sleep 0.05
done
ADDR=$(head -n1 "$LOG" | sed -n 's/.*"serving":"\([^"]*\)".*/\1/p')
[ -n "$ADDR" ] || fail "no serving address in banner: $(head -n1 "$LOG")"
echo "   daemon at $ADDR"

client() { "$CLI" client --addr "$ADDR" --request "$1"; }

echo "== ping"
PING=$(client '{"cmd":"ping"}')
case "$PING" in *'"ok":true'*) ;; *) fail "ping: $PING" ;; esac

echo "== cold run (must simulate)"
REQ='{"cmd":"run","benchmark":"myc","k":16,"pes":4,"scale":"tiny"}'
COLD=$(client "$REQ")
case "$COLD" in *'"cached":false'*) ;; *) fail "cold run not fresh: $COLD" ;; esac

echo "== warm run (must hit the cache, byte-identical result)"
WARM=$(client "$REQ")
case "$WARM" in *'"cached":true'*) ;; *) fail "warm run not cached: $WARM" ;; esac
# Everything after "result": must match byte for byte.
[ "${COLD#*\"result\":}" = "${WARM#*\"result\":}" ] || fail "cache hit diverged from fresh run"

echo "== metrics scrape (request and cache counters must be live)"
METRICS_OUT=${METRICS_OUT:-/tmp/spade_serve_metrics.json}
"$CLI" client metrics --addr "$ADDR" --format json >"$METRICS_OUT" \
  || fail "metrics request failed"
# After the cold+warm pair: two ok run requests, one cache hit.
PROM=$("$CLI" client metrics --addr "$ADDR" --prom) || fail "prom render failed"
case "$PROM" in *'spade_requests_total{cmd="run",outcome="ok"} 2'*) ;; *) fail "run counter not at 2 after warm pass: $PROM" ;; esac
case "$PROM" in *'spade_cache_hits_total 1'*) ;; *) fail "cache hit counter not at 1 after warm pass: $PROM" ;; esac
echo "   snapshot written to $METRICS_OUT"

echo "== dataset query (catalog must list the cached run)"
QUERY=$("$CLI" client query --addr "$ADDR" --benchmark myc --kind run --format json) \
  || fail "query request failed"
case "$QUERY" in *'"matched":1'*) ;; *) fail "query did not find the cached run: $QUERY" ;; esac

echo "== batch sweep (one request, per-job outcomes; myc is already warm)"
BATCH=$("$CLI" client batch --addr "$ADDR" --benchmarks myc,pac \
  --k 16 --pes 4 --scale tiny --format json) || fail "batch request failed"
case "$BATCH" in *'"total":2'*) ;; *) fail "batch total != 2: $BATCH" ;; esac
case "$BATCH" in *'"succeeded":2'*) ;; *) fail "batch jobs failed: $BATCH" ;; esac
case "$BATCH" in *'"cached":1'*) ;; *) fail "warm myc job was not a cache hit: $BATCH" ;; esac
PROM=$("$CLI" client metrics --addr "$ADDR" --prom) || fail "prom render failed"
case "$PROM" in *'spade_batch_jobs_total{outcome="ok"} 1'*) ;; *) fail "batch ok counter not at 1: $PROM" ;; esac
case "$PROM" in *'spade_batch_jobs_total{outcome="cached"} 1'*) ;; *) fail "batch cached counter not at 1: $PROM" ;; esac

echo "== aggregation (server-side group-by over the cache dataset)"
AGG=$("$CLI" client agg --addr "$ADDR" --group-by benchmark --kind run --format json) \
  || fail "agg request failed"
case "$AGG" in *'"groups_matched":2'*) ;; *) fail "agg groups != 2: $AGG" ;; esac
case "$AGG" in *'"best":'*) ;; *) fail "agg groups carry no best entry: $AGG" ;; esac
"$CLI" client best-plans --addr "$ADDR" >/dev/null || fail "best-plans failed"

echo "== advise (plan selection on the connection thread, counted by tier)"
ADVISE=$("$CLI" client advise --addr "$ADDR" --benchmark myc --k 16 --pes 4 \
  --scale tiny --format json) || fail "advise request failed"
# No --model was passed to serve, so the heuristic tier must answer.
case "$ADVISE" in *'"source":"heuristic"'*) ;; *) fail "advise did not fall back to heuristic: $ADVISE" ;; esac
case "$ADVISE" in *'"row_panel_size"'*) ;; *) fail "advise reply carries no plan: $ADVISE" ;; esac
PROM=$("$CLI" client metrics --addr "$ADDR" --prom) || fail "prom render failed"
case "$PROM" in *'spade_advise_total{source="heuristic"} 1'*) ;; *) fail "advise counter not at 1: $PROM" ;; esac
case "$PROM" in *'spade_advise_latency_microseconds_count 1'*) ;; *) fail "advise latency histogram empty: $PROM" ;; esac

echo "== malformed frame (daemon answers, stays up, client exits 1)"
if BAD=$(client 'this is not json'); then
  fail "malformed frame did not fail the client: $BAD"
fi
PING=$(client '{"cmd":"ping"}') || fail "daemon down after malformed frame"

echo "== concurrent burst (daemon keeps answering)"
BURST_PIDS=""
for i in $(seq 1 8); do
  client "{\"cmd\":\"run\",\"benchmark\":\"kro\",\"k\":16,\"pes\":4,\"no_cache\":true,\"id\":$i}" \
    >/dev/null 2>&1 &
  BURST_PIDS="$BURST_PIDS $!"
done
for pid in $BURST_PIDS; do wait "$pid" || true; done
STATUS=$(client '{"cmd":"status"}')
case "$STATUS" in *'"ok":true'*) ;; *) fail "status after burst: $STATUS" ;; esac

echo "== SIGTERM (drain, flush index, exit 0)"
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  DAEMON_PID=""
  fail "daemon did not exit 0 on SIGTERM"
fi
DAEMON_PID=""
SUMMARY=$(tail -n1 "$LOG")
case "$SUMMARY" in *'"served_ok"'*) ;; *) fail "no summary line: $SUMMARY" ;; esac
case "$SUMMARY" in *'"metrics"'*) ;; *) fail "summary has no metrics snapshot: $SUMMARY" ;; esac
[ -f "$CACHE_DIR/index.json" ] || fail "index.json was not flushed on drain"

rm -rf "$CACHE_DIR"
echo "serve_smoke: all checks passed."
